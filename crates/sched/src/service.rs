//! Open-arrival service front-end: admission queue, priority aging, EDF
//! ordering and capacity accounting over a [`ts_workload::Trace`].
//!
//! The batch runtime in [`crate::Scheduler`] answers "how long does this
//! fixed set of jobs take?"; a shared facility instead faces an *open*
//! stream — jobs keep arriving whether or not the machine is keeping
//! up, and the questions become *how long do arrivals wait*, *by how
//! much are they slowed down*, and *what sustained throughput does the
//! fleet hold at a given utilization*. [`ServiceScheduler`] answers
//! those two ways:
//!
//! * [`ServiceScheduler::run`] — the **capacity path**: a machineless
//!   discrete-event simulation of admission alone. Every arrival is
//!   treated as an opaque reservation that holds an aligned subcube for
//!   exactly its service demand, so millions of jobs stream through in
//!   seconds while exercising the *real* [`BuddyAllocator`] and the
//!   full admission policy. No `Machine` is built.
//! * [`ServiceScheduler::run_on_machine`] — the **fidelity path**: the
//!   same trace converted to [`JobSpec`]s (synthetic holds become
//!   [`JobKernel::Sleep`]; kernel arrivals run real SAXPY/all-reduce
//!   gangs) and driven through [`Scheduler::run_batch`] on a live
//!   simulated machine, with the same aging and EDF policy.
//!
//! The admission policy, in order:
//!
//! 1. **Effective priority** = class priority + aging boost. A waiting
//!    job gains one level per [`ServiceCfg::aging_period`] in the queue
//!    (capped at [`ServiceCfg::max_boost`]), so a stream of urgent
//!    arrivals cannot starve best-effort batch work.
//! 2. **EDF among equals**: within one effective priority level, the
//!    earliest absolute deadline goes first; best-effort jobs (no
//!    deadline) go last, in arrival order.
//! 3. **Reserved-head backfill**: when the head job does not fit, the
//!    free-most aligned block of its size is reserved for it and later
//!    arrivals may only be placed *outside* the reservation
//!    ([`BuddyAllocator::alloc_outside`]), so small jobs soak up the
//!    leftover nodes without ever postponing the head. The backfill
//!    scan is bounded ([`ServiceCfg::backfill_scan`]) so admission work
//!    per event stays O(1) under overload.
//!
//! Everything is deterministic: one seed pins the trace, and the event
//! loop uses only ordered containers, so two runs of the same trace
//! render byte-identical [`ServiceReport`]s.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use t_series_core::Machine;
use ts_cube::Subcube;
use ts_sim::{Dur, Histogram, MetricsRegistry};
use ts_workload::{Trace, WorkKind};

use crate::{BatchReport, BuddyAllocator, JobKernel, JobSpec, Policy, Scheduler};

/// Admission-policy knobs for [`ServiceScheduler`].
#[derive(Debug, Clone)]
pub struct ServiceCfg {
    /// Fleet dimension (`2^dim` nodes) for the capacity path.
    pub dim: u32,
    /// Queue time per aging promotion (one priority level each).
    pub aging_period: Dur,
    /// Cap on aging promotions per wait.
    pub max_boost: u32,
    /// Queued jobs examined per backfill pass behind a blocked head.
    pub backfill_scan: usize,
}

impl ServiceCfg {
    /// Defaults: 1 ms aging period, 4 levels of boost, 64-job backfill
    /// scan window.
    pub fn new(dim: u32) -> ServiceCfg {
        ServiceCfg {
            dim,
            aging_period: Dur::ms(1),
            max_boost: 4,
            backfill_scan: 64,
        }
    }

    /// Set the aging policy (period per promotion, max promotions).
    pub fn aging(mut self, period: Dur, max_boost: u32) -> ServiceCfg {
        assert!(!period.is_zero(), "aging period must be positive");
        self.aging_period = period;
        self.max_boost = max_boost;
        self
    }

    /// Set the backfill scan window.
    pub fn backfill_scan(mut self, n: usize) -> ServiceCfg {
        self.backfill_scan = n;
        self
    }
}

/// What the service measured over one trace.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Fleet dimension the stream was served on.
    pub dim: u32,
    /// Arrivals admitted (every one completes; admission never drops).
    pub jobs: u64,
    /// Stream start to last completion.
    pub makespan: Dur,
    /// Mean time from arrival to placement.
    pub mean_wait: Dur,
    /// Median wait.
    pub p50_wait: Dur,
    /// 99th-percentile wait.
    pub p99_wait: Dur,
    /// Mean of `(wait + service) / service` per job.
    pub mean_slowdown: f64,
    /// 99th-percentile slowdown, in thousandths (1000 = no slowdown).
    pub p99_slowdown_milli: u64,
    /// Sustained completion rate over the makespan, jobs per simulated
    /// second.
    pub jobs_per_sec: f64,
    /// Node-time held by jobs over `makespan × fleet nodes`.
    pub utilization: f64,
    /// Aging promotions granted while jobs waited.
    pub aging_promotions: u64,
    /// Placements where a deadline pulled a job ahead of an
    /// earlier-arrived job of equal effective priority.
    pub edf_reorders: u64,
    /// Jobs that completed after their absolute deadline.
    pub missed_deadlines: u64,
    /// Per-class `(name, jobs, p50 wait, p99 wait, missed deadlines)`.
    pub classes: Vec<(String, u64, Dur, Dur, u64)>,
}

impl ServiceReport {
    /// Render as a fixed-width capacity report (deterministic: same
    /// trace, same bytes).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "service dim {}: {} jobs in {:.3}ms  ({:.0} jobs/s, utilization {:.1}%)",
            self.dim,
            self.jobs,
            self.makespan.as_us_f64() / 1e3,
            self.jobs_per_sec,
            self.utilization * 100.0
        );
        let _ = writeln!(
            s,
            "wait mean {:.1}us p50 {:.1}us p99 {:.1}us  slowdown mean {:.3} p99 {:.3}",
            self.mean_wait.as_us_f64(),
            self.p50_wait.as_us_f64(),
            self.p99_wait.as_us_f64(),
            self.mean_slowdown,
            self.p99_slowdown_milli as f64 / 1e3
        );
        let _ = writeln!(
            s,
            "promotions {}  edf reorders {}  missed deadlines {}",
            self.aging_promotions, self.edf_reorders, self.missed_deadlines
        );
        for (name, jobs, p50, p99, missed) in &self.classes {
            let _ = writeln!(
                s,
                "  class {:<10} {:>8} jobs  wait p50 {:>9.1}us p99 {:>9.1}us  missed {}",
                name,
                jobs,
                p50.as_us_f64(),
                p99.as_us_f64(),
                missed
            );
        }
        s
    }

    /// Record the report under `service/...` in a metrics registry.
    pub fn record(&self, reg: &MetricsRegistry) {
        let scope = reg.scope("service");
        scope.counter("jobs").add(self.jobs);
        scope
            .counter("makespan_us")
            .add(self.makespan.as_ns() / 1_000);
        scope
            .counter("p50_wait_us")
            .add(self.p50_wait.as_ns() / 1_000);
        scope
            .counter("p99_wait_us")
            .add(self.p99_wait.as_ns() / 1_000);
        scope.counter("promotions").add(self.aging_promotions);
        scope.counter("edf_reorders").add(self.edf_reorders);
        scope.counter("missed_deadlines").add(self.missed_deadlines);
    }
}

/// Event tags; at one timestamp, completions are processed before
/// promotions so freed nodes are visible to every placement decision
/// made at that instant.
const EV_COMPLETE: u8 = 0;
const EV_PROMOTE: u8 = 1;

/// Per-effective-priority wait queue: EDF order for picking, arrival
/// order for detecting when a deadline jumped the FIFO.
#[derive(Default)]
struct Bucket {
    /// `(absolute deadline ps, seq)` — pick order.
    by_dl: BTreeSet<(u64, u32)>,
    /// `seq` — FIFO order, for EDF-reorder detection.
    by_seq: BTreeSet<u32>,
}

/// One admitted job's mutable state on the capacity path.
struct Slot {
    /// Aging boost earned so far.
    boost: u32,
    /// Still waiting?
    queued: bool,
    /// Subcube held while running (for release at completion).
    sub: Option<Subcube>,
}

/// The admission front-end. Construct with [`ServiceScheduler::new`].
pub struct ServiceScheduler {
    cfg: ServiceCfg,
}

impl ServiceScheduler {
    /// A service with the given admission configuration.
    pub fn new(cfg: ServiceCfg) -> ServiceScheduler {
        ServiceScheduler { cfg }
    }

    /// Serve `trace` on the capacity path: admission + buddy allocation
    /// only, every job an opaque hold of its service demand. Handles
    /// millions of arrivals; deterministic to the byte.
    pub fn run(&self, trace: &Trace) -> ServiceReport {
        let dim = self.cfg.dim;
        assert!(
            trace.max_dim() <= dim,
            "trace contains a job wider than the {dim}-cube fleet"
        );
        let n = trace.len();
        let arrivals = &trace.arrivals;
        let mut alloc = BuddyAllocator::new(dim);
        // Min-heap of (time ps, tag, seq).
        let mut events: BinaryHeap<Reverse<(u64, u8, u32)>> = BinaryHeap::new();
        let mut buckets: BTreeMap<u32, Bucket> = BTreeMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(n);
        // Reservation for a blocked head: (head seq, its block).
        let mut reservation: Option<(u32, Subcube)> = None;

        let mut stats = StreamStats::new(trace);
        let mut next_arrival = 0usize;
        let aging_on = self.cfg.max_boost > 0;

        while next_arrival < n || !events.is_empty() {
            // The next instant anything happens.
            let ta = arrivals
                .get(next_arrival)
                .map(|a| a.at.as_ps())
                .unwrap_or(u64::MAX);
            let te = events.peek().map(|Reverse(e)| e.0).unwrap_or(u64::MAX);
            let now = ta.min(te);

            // Admit every arrival at this instant.
            while next_arrival < n && arrivals[next_arrival].at.as_ps() == now {
                let seq = next_arrival as u32;
                let a = &arrivals[next_arrival];
                slots.push(Slot {
                    boost: 0,
                    queued: true,
                    sub: None,
                });
                let dl = a.deadline.map_or(u64::MAX, |d| (a.at + d).as_ps());
                let b = buckets.entry(a.priority).or_default();
                b.by_dl.insert((dl, seq));
                b.by_seq.insert(seq);
                if aging_on {
                    events.push(Reverse((
                        now + self.cfg.aging_period.as_ps(),
                        EV_PROMOTE,
                        seq,
                    )));
                }
                next_arrival += 1;
            }

            // Process every event at this instant (completions first).
            while let Some(&Reverse((t, tag, seq))) = events.peek() {
                if t != now {
                    break;
                }
                events.pop();
                let a = &arrivals[seq as usize];
                match tag {
                    EV_COMPLETE => {
                        let sub = slots[seq as usize]
                            .sub
                            .take()
                            .expect("completing job holds");
                        alloc.release(&sub);
                        stats.complete(seq, now, a);
                    }
                    _ => {
                        // Promotion: still waiting → one level up.
                        let slot = &mut slots[seq as usize];
                        if slot.queued {
                            let old = a.priority + slot.boost;
                            let dl = a.deadline.map_or(u64::MAX, |d| (a.at + d).as_ps());
                            let b = buckets.get_mut(&old).expect("queued job has a bucket");
                            b.by_dl.remove(&(dl, seq));
                            b.by_seq.remove(&seq);
                            if b.by_dl.is_empty() {
                                buckets.remove(&old);
                            }
                            slot.boost += 1;
                            stats.promotions += 1;
                            let b = buckets.entry(old + 1).or_default();
                            b.by_dl.insert((dl, seq));
                            b.by_seq.insert(seq);
                            if slot.boost < self.cfg.max_boost {
                                events.push(Reverse((
                                    t + self.cfg.aging_period.as_ps(),
                                    EV_PROMOTE,
                                    seq,
                                )));
                            }
                        }
                    }
                }
            }

            // Placement. First the head (highest bucket, EDF order),
            // repeatedly while it fits.
            loop {
                let Some((&eff, b)) = buckets.iter().next_back() else {
                    reservation = None;
                    break;
                };
                let &(_, seq) = b.by_dl.iter().next().expect("bucket is never empty");
                let fifo = *b.by_seq.iter().next().expect("bucket is never empty");
                let a = &arrivals[seq as usize];
                let Some(sub) = alloc.alloc(a.dim) else {
                    // Blocked head: reserve the block it should drain
                    // into, sticky while the same head waits.
                    if reservation.as_ref().map(|&(o, _)| o) != Some(seq) {
                        reservation = alloc.best_reservation(a.dim).map(|r| (seq, r));
                    }
                    break;
                };
                if seq != fifo {
                    stats.edf_reorders += 1;
                }
                remove_queued(
                    &mut buckets,
                    eff,
                    a.deadline.map_or(u64::MAX, |d| (a.at + d).as_ps()),
                    seq,
                );
                start(
                    &mut slots[seq as usize],
                    sub,
                    seq,
                    now,
                    a,
                    &mut stats,
                    &mut events,
                );
            }

            // Backfill behind a blocked head: bounded scan of the rest
            // of the queue, placing only outside the reservation.
            if let Some((head, region)) = reservation.clone() {
                let mut picked: Vec<(u32, u32, u64, Subcube)> = Vec::new();
                let mut scanned = 0usize;
                'scan: for (&eff, b) in buckets.iter().rev() {
                    for &(dl, seq) in b.by_dl.iter() {
                        if seq == head {
                            continue;
                        }
                        if scanned >= self.cfg.backfill_scan {
                            break 'scan;
                        }
                        scanned += 1;
                        let a = &arrivals[seq as usize];
                        if let Some(sub) = alloc.alloc_outside(a.dim, Some(&region)) {
                            picked.push((seq, eff, dl, sub));
                        }
                    }
                }
                for (seq, eff, dl, sub) in picked {
                    remove_queued(&mut buckets, eff, dl, seq);
                    let a = &arrivals[seq as usize];
                    start(
                        &mut slots[seq as usize],
                        sub,
                        seq,
                        now,
                        a,
                        &mut stats,
                        &mut events,
                    );
                }
            }
        }

        stats.finish(dim, trace)
    }

    /// Serve `trace` on the fidelity path: every arrival becomes a
    /// [`JobSpec`] (synthetic holds run [`JobKernel::Sleep`], kernel
    /// arrivals run real gangs) driven through [`Scheduler::run_batch`]
    /// on `m` under backfill + the same aging policy. Returns the raw
    /// batch report alongside the service view of it.
    pub fn run_on_machine(&self, m: &mut Machine, trace: &Trace) -> (BatchReport, ServiceReport) {
        let specs: Vec<JobSpec> = trace
            .arrivals
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let kernel = match a.work {
                    WorkKind::Synthetic => JobKernel::Sleep { dur: a.service },
                    WorkKind::Saxpy { phases, sweeps } => JobKernel::Saxpy { phases, sweeps },
                    WorkKind::AllReduce { phases } => JobKernel::AllReduce { phases },
                };
                let mut s = JobSpec::new(&format!("a{i}"), a.dim, kernel)
                    .priority(a.priority)
                    .submit_at(a.at);
                if let Some(d) = a.deadline {
                    s = s.deadline(d);
                }
                s
            })
            .collect();
        let dim = m.cube.dim();
        let rep = Scheduler::new(Policy::FcfsBackfill)
            .aging(self.cfg.aging_period, self.cfg.max_boost)
            .run_batch(m, specs, None);
        let svc = service_view(dim, trace, &rep);
        (rep, svc)
    }
}

/// Remove a queued job from its bucket, dropping the bucket when empty.
fn remove_queued(buckets: &mut BTreeMap<u32, Bucket>, eff: u32, dl: u64, seq: u32) {
    let b = buckets.get_mut(&eff).expect("queued job has a bucket");
    b.by_dl.remove(&(dl, seq));
    b.by_seq.remove(&seq);
    if b.by_dl.is_empty() {
        buckets.remove(&eff);
    }
}

/// Transition a job to running: record its wait, schedule completion.
fn start(
    slot: &mut Slot,
    sub: Subcube,
    seq: u32,
    now: u64,
    a: &ts_workload::Arrival,
    stats: &mut StreamStats,
    events: &mut BinaryHeap<Reverse<(u64, u8, u32)>>,
) {
    slot.queued = false;
    slot.sub = Some(sub);
    stats.place(seq, now, a);
    events.push(Reverse((now + a.service.as_ps().max(1), EV_COMPLETE, seq)));
}

/// Streaming accumulation of the service metrics.
struct StreamStats {
    wait_us: Histogram,
    slowdown_milli: Histogram,
    class_wait_us: Vec<Histogram>,
    class_jobs: Vec<u64>,
    class_missed: Vec<u64>,
    sum_wait_ps: u128,
    sum_slowdown: f64,
    busy_node_ps: u128,
    completed: u64,
    last_completion_ps: u64,
    promotions: u64,
    edf_reorders: u64,
    missed: u64,
}

impl StreamStats {
    fn new(trace: &Trace) -> StreamStats {
        StreamStats {
            wait_us: Histogram::new(),
            slowdown_milli: Histogram::new(),
            class_wait_us: trace.classes.iter().map(|_| Histogram::new()).collect(),
            class_jobs: vec![0; trace.classes.len()],
            class_missed: vec![0; trace.classes.len()],
            sum_wait_ps: 0,
            sum_slowdown: 0.0,
            busy_node_ps: 0,
            completed: 0,
            last_completion_ps: 0,
            promotions: 0,
            edf_reorders: 0,
            missed: 0,
        }
    }

    fn place(&mut self, _seq: u32, now: u64, a: &ts_workload::Arrival) {
        let wait_ps = now - a.at.as_ps();
        let wait_us = wait_ps / 1_000_000;
        self.wait_us.observe(wait_us);
        self.class_wait_us[a.class as usize].observe(wait_us);
        self.class_jobs[a.class as usize] += 1;
        self.sum_wait_ps += wait_ps as u128;
        let service = a.service.as_ps().max(1);
        let slowdown_milli = ((wait_ps as u128 + service as u128) * 1000 / service as u128) as u64;
        self.slowdown_milli.observe(slowdown_milli);
        self.sum_slowdown += slowdown_milli as f64 / 1e3;
        self.busy_node_ps += (service as u128) << a.dim;
    }

    fn complete(&mut self, _seq: u32, now: u64, a: &ts_workload::Arrival) {
        self.completed += 1;
        self.last_completion_ps = self.last_completion_ps.max(now);
        if a.deadline.is_some_and(|d| now > (a.at + d).as_ps()) {
            self.missed += 1;
            self.class_missed[a.class as usize] += 1;
        }
    }

    fn finish(self, dim: u32, trace: &Trace) -> ServiceReport {
        let makespan_ps = self.last_completion_ps;
        let makespan_s = makespan_ps as f64 / 1e12;
        let n = self.completed.max(1);
        let classes = trace
            .classes
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.clone(),
                    self.class_jobs[i],
                    Dur::us(self.class_wait_us[i].quantile(0.5)),
                    Dur::us(self.class_wait_us[i].quantile(0.99)),
                    self.class_missed[i],
                )
            })
            .collect();
        ServiceReport {
            dim,
            jobs: self.completed,
            makespan: Dur::ps(makespan_ps),
            mean_wait: Dur::ps((self.sum_wait_ps / n as u128) as u64),
            p50_wait: Dur::us(self.wait_us.quantile(0.5)),
            p99_wait: Dur::us(self.wait_us.quantile(0.99)),
            mean_slowdown: self.sum_slowdown / n as f64,
            p99_slowdown_milli: self.slowdown_milli.quantile(0.99),
            jobs_per_sec: if makespan_s > 0.0 {
                self.completed as f64 / makespan_s
            } else {
                0.0
            },
            utilization: if makespan_ps > 0 {
                self.busy_node_ps as f64 / (makespan_ps as f64 * (1u64 << dim) as f64)
            } else {
                0.0
            },
            aging_promotions: self.promotions,
            edf_reorders: self.edf_reorders,
            missed_deadlines: self.missed,
            classes,
        }
    }
}

/// Build the service view of a machine-path batch report.
fn service_view(dim: u32, trace: &Trace, rep: &BatchReport) -> ServiceReport {
    let mut stats = StreamStats::new(trace);
    for (j, a) in rep.jobs.iter().zip(trace.arrivals.iter()) {
        let place_ps = a.at.as_ps() + j.wait.as_ps();
        stats.place(j.id, place_ps, a);
        let done_ps = a.at.as_ps() + j.turnaround.as_ps();
        stats.complete(j.id, done_ps, a);
    }
    stats.promotions = rep.aging_promotions as u64;
    stats.edf_reorders = rep.edf_reorders as u64;
    // The batch path's busy time is measured (includes gates), not the
    // nominal service demand; recompute utilization from the report.
    let mut svc = stats.finish(dim, trace);
    svc.utilization = rep.utilization;
    svc.makespan = rep.makespan;
    svc.jobs_per_sec = if rep.makespan.as_secs_f64() > 0.0 {
        rep.jobs.len() as f64 / rep.makespan.as_secs_f64()
    } else {
        0.0
    };
    svc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_workload::{Dist, TraceGen};

    fn gen(dim: u32, load: f64, n: usize) -> Trace {
        // Size the arrival rate for the requested offered load.
        let g = TraceGen::new(99)
            .sizes(&[(1, 0.6), (2, 0.3), (3, 0.1)])
            .service(Dist::Exp { mean: 1e-4 })
            .classes("batch", 0.8, 0, None)
            .class("urgent", 0.2, 3, Some(30.0));
        let unit = g
            .clone()
            .interarrival(Dist::Fixed(1.0))
            .offered_load(dim)
            .unwrap();
        g.interarrival(Dist::Exp { mean: unit / load }).generate(n)
    }

    #[test]
    fn open_stream_completes_every_job_and_is_deterministic() {
        let trace = gen(6, 0.8, 20_000);
        let svc = ServiceScheduler::new(ServiceCfg::new(6).aging(Dur::us(500), 4));
        let a = svc.run(&trace);
        let b = svc.run(&trace);
        assert_eq!(a.render(), b.render(), "same trace must render identically");
        assert_eq!(a.jobs, 20_000);
        assert!(
            a.utilization > 0.5 && a.utilization < 1.0,
            "{}",
            a.utilization
        );
        assert!(a.aging_promotions > 0, "waiting batch jobs must age");
        assert!(a.edf_reorders > 0, "deadlines must reorder some picks");
    }

    #[test]
    fn light_load_waits_little_heavy_load_waits_long() {
        let light = ServiceScheduler::new(ServiceCfg::new(6)).run(&gen(6, 0.3, 10_000));
        let heavy = ServiceScheduler::new(ServiceCfg::new(6)).run(&gen(6, 0.95, 10_000));
        assert!(
            heavy.p99_wait > light.p99_wait,
            "p99 wait must grow with load: {:?} vs {:?}",
            light.p99_wait,
            heavy.p99_wait
        );
        assert!(heavy.utilization > light.utilization);
        assert!(heavy.mean_slowdown >= light.mean_slowdown);
    }

    #[test]
    fn machine_path_agrees_with_capacity_path_on_occupancy() {
        // A short all-synthetic trace: both paths serve it; the machine
        // path is quantum-grained so waits differ, but both complete
        // every job and see comparable utilization.
        let trace = TraceGen::new(17)
            .interarrival(Dist::Exp { mean: 2e-4 })
            .service(Dist::Exp { mean: 3e-4 })
            .sizes(&[(0, 0.5), (1, 0.5)])
            .generate(60);
        let svc = ServiceScheduler::new(ServiceCfg::new(2).aging(Dur::ms(1), 2));
        let fast = svc.run(&trace);
        let mut m = Machine::build(t_series_core::MachineCfg::cube_small_mem(2, 8));
        let (rep, slow) = svc.run_on_machine(&mut m, &trace);
        assert_eq!(fast.jobs, 60);
        assert_eq!(slow.jobs, 60);
        assert_eq!(rep.jobs.len(), 60);
        let ratio = slow.utilization / fast.utilization.max(1e-12);
        assert!(
            (0.5..2.0).contains(&ratio),
            "utilizations should be comparable: fast {} machine {}",
            fast.utilization,
            slow.utilization
        );
    }

    #[test]
    fn wide_head_is_not_starved_by_an_open_stream() {
        // A dim-3 job arrives early into a dim-3 fleet saturated by an
        // endless stream of dim-0/1 jobs. The reservation must get it
        // placed long before the stream drains.
        let mut trace = Trace::new();
        let stream = trace.class("stream");
        let wide = trace.class("wide");
        for i in 0..500u64 {
            trace.push(ts_workload::Arrival {
                at: Dur::us(20 * i),
                dim: (i % 2) as u32,
                priority: 0,
                class: stream,
                work: WorkKind::Synthetic,
                service: Dur::us(120),
                deadline: None,
            });
            if i == 10 {
                trace.push(ts_workload::Arrival {
                    at: Dur::us(20 * i + 1),
                    dim: 3,
                    priority: 0,
                    class: wide,
                    work: WorkKind::Synthetic,
                    service: Dur::us(100),
                    deadline: None,
                });
            }
        }
        let rep = ServiceScheduler::new(ServiceCfg::new(3)).run(&trace);
        assert_eq!(rep.jobs, 501);
        // The stream oversubscribes the fleet (load > 1), so stream
        // waits grow without bound — but the wide job's wait is bounded
        // by the drain of its reserved block, not by the stream length.
        let (_, n, wide_wait, _, _) = rep.classes[wide as usize].clone();
        assert_eq!(n, 1);
        assert!(
            wide_wait < Dur::ms(1),
            "wide job waited {wide_wait:?}: reservation failed to protect it"
        );
        let (_, _, stream_p50, _, _) = rep.classes[stream as usize].clone();
        assert!(
            stream_p50 > wide_wait,
            "overloaded stream should wait longer than the reserved head"
        );
    }
}
