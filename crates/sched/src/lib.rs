//! # ts-sched — space-sharing job scheduler for the T Series
//!
//! The paper's machine is built from 8-node modules that each form a
//! 3-subcube (§III), and any aligned subcube of a binary n-cube is a
//! complete hypercube — so the machine is naturally *space-shareable*:
//! disjoint subcubes can run independent jobs with full isolation, the
//! partitioned mode of operation contemporary hypercubes shipped with.
//! This crate adds that system-software layer on top of
//! [`t_series_core::Machine`]:
//!
//! * [`BuddyAllocator`] — deterministic buddy allocation of aligned
//!   d-subcubes (split/coalesce, module affinity for free);
//! * [`JobSpec`] / [`JobKernel`] — phase-structured SPMD jobs that
//!   address nodes only by virtual id, so results are bit-identical on
//!   any subcube of the right dimension;
//! * [`Scheduler`] — a space-sharing runtime driving many jobs
//!   concurrently on one simulated machine under [`Policy::Fcfs`] or
//!   [`Policy::FcfsBackfill`], with priority preemption and fault-driven
//!   re-allocation, both via checkpoint images at phase boundaries;
//! * per-job accounting — `job/{id}/...` counters in the machine's
//!   [`ts_sim::MetricsRegistry`] and job spans on a Perfetto
//!   [`ts_sim::Tracer`].
//!
//! ## Preemption and faults without task cancellation
//!
//! The deterministic executor cannot kill a task, so the scheduler never
//! needs to: jobs only yield the machine at **phase boundaries**, where
//! a partition has no live tasks and its whole state is node memory.
//! Preemption marks a running job; at its next boundary the scheduler
//! captures the partition's memory images, frees the subcube and
//! re-queues the job, which later resumes — bit-identically — on
//! whatever subcube is free. A fault (crashed node, latent parity error)
//! inside a partition instead **condemns** the subcube permanently: its
//! parked tasks and corrupt memory are harmless on nodes that are never
//! handed out again, and the job is re-allocated to a fresh subcube and
//! replayed from its last boundary checkpoint.
//!
//! Checkpoint streaming cost is charged when a job resumes (snapshot +
//! restore, `image bytes / stream_rate` each way) as a gate before its
//! next phase launches; capturing the host-side images themselves is
//! free, mirroring how [`t_series_core::supervisor`] charges snapshot
//! cost to job time.

mod buddy;
mod job;
mod service;

pub use buddy::BuddyAllocator;
pub use job::{JobKernel, JobSpec};
pub use service::{ServiceCfg, ServiceReport, ServiceScheduler};

use std::cmp::Reverse;

use t_series_core::{Machine, MachineCfg};
use ts_cube::Subcube;
use ts_sim::{Dur, JoinHandle, Time, Tracer};

/// Queue discipline for jobs that are waiting for a subcube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict arrival order (within descending priority): the head job
    /// blocks everything behind it until its subcube is free.
    Fcfs,
    /// Arrival order, but when the head job cannot be placed, later jobs
    /// that *do* fit start immediately on the leftover subcubes.
    FcfsBackfill,
}

/// What one job experienced, measured by the scheduler.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job id (submission order).
    pub id: u32,
    /// Name from the spec.
    pub name: String,
    /// Subcube dimension the job ran on.
    pub dim: u32,
    /// Priority from the spec.
    pub priority: u32,
    /// Total time spent queued (arrival to placement, summed over
    /// every eviction/re-queue cycle).
    pub wait: Dur,
    /// Total time holding a subcube (including resume gates).
    pub run: Dur,
    /// Submission to completion.
    pub turnaround: Dur,
    /// Times the job was evicted for a higher-priority job.
    pub preemptions: u32,
    /// Times a fault forced re-allocation to a fresh subcube.
    pub reallocations: u32,
    /// Achieved MFLOPS over the job's run time.
    pub mflops: f64,
    /// Did the job finish after its deadline?
    pub missed_deadline: bool,
    /// The job's numerical result (f64 bit patterns in virtual node
    /// order) — the unit of the bit-identity guarantees.
    pub result: Vec<u64>,
}

/// Batch-level summary returned by [`Scheduler::run_batch`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Batch start to last completion.
    pub makespan: Dur,
    /// Mean of the jobs' wait times.
    pub mean_wait: Dur,
    /// Node-time actually allocated to jobs over `makespan × nodes`.
    pub utilization: f64,
    /// Total preemptions across the batch.
    pub preemptions: u32,
    /// Total fault-driven re-allocations across the batch.
    pub reallocations: u32,
    /// Priority-aging steps granted to waiting jobs (see
    /// [`Scheduler::aging`]).
    pub aging_promotions: u32,
    /// Placements where a deadline pulled a job ahead of an
    /// earlier-submitted job of equal effective priority.
    pub edf_reorders: u32,
}

impl BatchReport {
    /// Render the report as a fixed-width table (deterministic: same
    /// batch, same bytes).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>3} {:<12} {:>3} {:>3} {:>12} {:>12} {:>7} {:>7} {:>9}",
            "job", "name", "dim", "pri", "wait", "run", "preempt", "realloc", "MFLOPS"
        );
        for j in &self.jobs {
            let _ = writeln!(
                s,
                "{:>3} {:<12} {:>3} {:>3} {:>10.1}us {:>10.1}us {:>7} {:>7} {:>9.3}{}",
                j.id,
                j.name,
                j.dim,
                j.priority,
                j.wait.as_us_f64(),
                j.run.as_us_f64(),
                j.preemptions,
                j.reallocations,
                j.mflops,
                if j.missed_deadline { "  LATE" } else { "" }
            );
        }
        let _ = writeln!(
            s,
            "makespan {:.1}us  mean wait {:.1}us  utilization {:.1}%  \
             preemptions {}  reallocations {}  promotions {}  edf {}",
            self.makespan.as_us_f64(),
            self.mean_wait.as_us_f64(),
            self.utilization * 100.0,
            self.preemptions,
            self.reallocations,
            self.aging_promotions,
            self.edf_reorders
        );
        s
    }
}

/// A job's dedicated-machine reference run (see [`run_standalone`]).
#[derive(Debug, Clone)]
pub struct StandaloneRun {
    /// Result bits, virtual node order.
    pub result: Vec<u64>,
    /// Simulated duration of the phases.
    pub elapsed: Dur,
}

/// Run `spec` alone on a dedicated cube of exactly its dimension — the
/// reference against which space-shared runs must be bit-identical.
pub fn run_standalone(cfg: MachineCfg, spec: &JobSpec) -> StandaloneRun {
    assert_eq!(
        cfg.dim, spec.dim,
        "dedicated machine must match the job's dim"
    );
    let mut m = Machine::build(cfg);
    let sub = Subcube::aligned(0, spec.dim);
    spec.kernel.setup(&m, &sub);
    let t0 = m.now();
    for p in 0..spec.kernel.phases() {
        let handles = spec.kernel.launch_phase(&mut m, &sub, p);
        assert!(m.run().quiescent, "standalone phase {p} stalled");
        debug_assert!(handles.iter().all(|h| h.is_finished()));
    }
    StandaloneRun {
        result: spec.kernel.result(&m, &sub),
        elapsed: m.now().since(t0),
    }
}

enum State {
    /// Waiting for a subcube (not yet arrived, fresh, or evicted).
    Queued,
    /// Holding `sub`. `handles` is `None` between placement and the
    /// first launch (the resume gate), `Some` while a phase is in
    /// flight.
    Running {
        sub: Subcube,
        gate: Time,
        held_since: Time,
        handles: Option<Vec<JoinHandle<()>>>,
    },
    Done,
}

/// What a gate-passed running job is ready for at this scheduler tick.
enum BoundaryKind {
    /// The resume/checkpoint gate has passed; launch the next phase.
    Launch,
    /// The in-flight phase's tasks have all finished.
    PhaseDone,
}

struct Job {
    spec: JobSpec,
    state: State,
    next_phase: u32,
    /// Boundary checkpoint: memory images (virtual node order) with
    /// phases `0..next_phase` applied. `None` until first placement.
    /// Kept current by applying each boundary's dirty-row delta.
    images: Option<Vec<Vec<u32>>>,
    /// Delta bytes captured at the last eviction, still to be streamed
    /// out — charged (with the full image back in) at the resume gate.
    pending_out_bytes: u64,
    preempt_requested: bool,
    preemptions: u32,
    reallocations: u32,
    wait: Dur,
    run: Dur,
    /// When the current wait interval began (arrival or re-queue).
    queued_at: Time,
    /// Priority-aging boost earned in the current wait interval; added
    /// to the spec priority for ordering and preemption decisions.
    boost: u32,
    done_at: Option<Time>,
    result: Vec<u64>,
}

/// A job's effective priority: spec priority plus its aging boost.
fn eff_priority(job: &Job) -> u32 {
    job.spec.priority + job.boost
}

/// Absolute-deadline sort key (ps since batch start); best-effort jobs
/// sort after every deadline.
fn deadline_key(job: &Job) -> u64 {
    job.spec
        .deadline
        .map_or(u64::MAX, |d| (job.spec.submit_at + d).as_ps())
}

/// The space-sharing runtime. Construct with [`Scheduler::new`], tune
/// with the builder methods, then [`Scheduler::run_batch`].
pub struct Scheduler {
    policy: Policy,
    quantum: Dur,
    stream_rate: f64,
    aging: Option<(Dur, u32)>,
    reserve_after: Dur,
}

impl Scheduler {
    /// A scheduler with the given queue policy, a 50 µs scheduling
    /// quantum, 1 MB/s checkpoint streaming (the module disk rate), no
    /// priority aging, and a 1 ms backfill-reservation grace period.
    pub fn new(policy: Policy) -> Scheduler {
        Scheduler {
            policy,
            quantum: Dur::us(50),
            stream_rate: 1.0e6,
            aging: None,
            reserve_after: Dur::ms(1),
        }
    }

    /// How long the head of the queue must wait before it earns a
    /// backfill reservation. Below the threshold later jobs backfill
    /// greedily (maximum utilization for batches that drain on their
    /// own); past it the head's block is fenced off so an open stream
    /// of small jobs cannot starve a wide one.
    pub fn reserve_after(mut self, d: Dur) -> Scheduler {
        self.reserve_after = d;
        self
    }

    /// Enable priority aging: a waiting job gains one priority level per
    /// `period` spent in the queue, up to `max_boost` levels, so a
    /// best-effort stream cannot be starved by a stream of urgent
    /// arrivals. The boost resets whenever the job is placed.
    pub fn aging(mut self, period: Dur, max_boost: u32) -> Scheduler {
        assert!(!period.is_zero(), "aging period must be positive");
        self.aging = Some((period, max_boost));
        self
    }

    /// Scheduling granularity: phase boundaries, arrivals and faults are
    /// observed at most this much simulated time after they occur.
    pub fn quantum(mut self, d: Dur) -> Scheduler {
        assert!(!d.is_zero(), "quantum must be positive");
        self.quantum = d;
        self
    }

    /// Bytes/second charged for streaming checkpoint traffic: each
    /// boundary's dirty-row delta is charged as a gate when captured,
    /// and a resume charges the evicted job's pending delta plus the
    /// full image back in before its next phase may launch.
    pub fn stream_rate(mut self, bytes_per_s: f64) -> Scheduler {
        assert!(bytes_per_s > 0.0, "stream rate must be positive");
        self.stream_rate = bytes_per_s;
        self
    }

    /// Run a batch of jobs to completion on `m`, space-sharing the cube.
    /// Deterministic: the same machine, batch and scheduler settings
    /// produce the same report, bit for bit.
    pub fn run_batch(
        &self,
        m: &mut Machine,
        specs: Vec<JobSpec>,
        tracer: Option<&Tracer>,
    ) -> BatchReport {
        let machine_dim = m.cube.dim();
        for s in &specs {
            assert!(
                s.dim <= machine_dim,
                "job '{}' wants a {}-cube of a {machine_dim}-cube",
                s.name,
                s.dim
            );
        }
        let t0 = m.now();
        let mut alloc = BuddyAllocator::new(machine_dim);
        let mut jobs: Vec<Job> = specs
            .into_iter()
            .map(|spec| Job {
                queued_at: t0 + spec.submit_at,
                spec,
                state: State::Queued,
                next_phase: 0,
                images: None,
                pending_out_bytes: 0,
                preempt_requested: false,
                preemptions: 0,
                reallocations: 0,
                wait: Dur::ZERO,
                run: Dur::ZERO,
                boost: 0,
                done_at: None,
                result: Vec::new(),
            })
            .collect();
        let mut aging_promotions = 0u32;
        let mut edf_reorders = 0u32;
        // Backfill reservation: (head job id, the aligned block it is
        // waiting to drain). Backfilled jobs are placed outside it.
        let mut reservation: Option<(usize, Subcube)> = None;

        loop {
            let now = m.now();

            // 1. Fault patrol: a crashed node or latent parity error
            //    inside a partition condemns exactly the failed nodes
            //    (the buddy allocator splits the block and frees the
            //    healthy buddies); the job re-queues for a fresh subcube
            //    and boundary replay.
            for (id, job) in jobs.iter_mut().enumerate() {
                let sick_sub = match &job.state {
                    State::Running { sub, handles, .. } => {
                        let failed: Vec<_> = sub
                            .iter()
                            .filter(|&p| {
                                let n = &m.nodes[p as usize];
                                n.is_crashed() || n.mem().parity_errors() > 0
                            })
                            .collect();
                        if failed.is_empty() {
                            None
                        } else {
                            // Retire the failed nodes, plus any node whose
                            // phase task is still parked: its channels are
                            // not quiescent, and a stale receiver could
                            // steal a successor job's messages. Nodes whose
                            // task already completed are healthy buddies —
                            // the allocator splits the block and returns
                            // them to the free lists.
                            let mut retire = failed;
                            if let Some(hs) = handles {
                                for (v, p) in sub.iter().enumerate() {
                                    if !hs[v].is_finished() && !retire.contains(&p) {
                                        retire.push(p);
                                    }
                                }
                            }
                            Some((sub.clone(), retire))
                        }
                    }
                    _ => None,
                };
                if let Some((sub, retire)) = sick_sub {
                    alloc.condemn(&sub, &retire);
                    if let State::Running { held_since, .. } = job.state {
                        job.run += now.since(held_since);
                        record_span(tracer, id, held_since, now);
                    }
                    job.reallocations += 1;
                    m.registry()
                        .scope(&job_scope(id))
                        .counter("reallocations")
                        .inc();
                    job.preempt_requested = false;
                    job.queued_at = now;
                    job.boost = 0;
                    // In-flight tasks of the lost phase stay parked on
                    // the retired nodes — harmless, never reused. The
                    // eviction-time delta (if any) died with the subcube:
                    // replay restarts from the last committed boundary.
                    job.pending_out_bytes = 0;
                    job.state = State::Queued;
                }
            }

            // 2. Advance running jobs at phase boundaries.
            for (id, job) in jobs.iter_mut().enumerate() {
                let boundary = match &mut job.state {
                    State::Running { gate, handles, .. } if now >= *gate => match handles {
                        None => Some(BoundaryKind::Launch),
                        Some(hs) => {
                            if hs.iter().all(|h| h.is_finished()) {
                                job.next_phase += 1;
                                Some(BoundaryKind::PhaseDone)
                            } else {
                                None
                            }
                        }
                    },
                    _ => None,
                };
                let Some(kind) = boundary else {
                    continue;
                };
                let (sub, held_since) = match &job.state {
                    State::Running {
                        sub, held_since, ..
                    } => (sub.clone(), *held_since),
                    _ => unreachable!(),
                };
                let evict = |job: &mut Job, m: &Machine| {
                    job.run += now.since(held_since);
                    job.preemptions += 1;
                    m.registry()
                        .scope(&job_scope(id))
                        .counter("preemptions")
                        .inc();
                    job.preempt_requested = false;
                    job.queued_at = now;
                    job.boost = 0;
                    job.state = State::Queued;
                };
                match kind {
                    BoundaryKind::PhaseDone if job.next_phase >= job.spec.kernel.phases() => {
                        // Complete.
                        job.result = job.spec.kernel.result(m, &sub);
                        job.run += now.since(held_since);
                        job.done_at = Some(now);
                        job.state = State::Done;
                        record_span(tracer, id, held_since, now);
                        alloc.release(&sub);
                        let scope = m.registry().scope(&job_scope(id));
                        scope.counter("wait_us").add(job.wait.as_ns() / 1_000);
                        scope.counter("run_us").add(job.run.as_ns() / 1_000);
                        scope
                            .counter("flops")
                            .add(job.spec.kernel.flops(job.spec.dim));
                    }
                    BoundaryKind::PhaseDone if job.preempt_requested => {
                        // Evict: fold this boundary's dirty rows into the
                        // images; their stream-out is still owed and is
                        // charged at resume, on top of the full restore.
                        let bytes = capture_delta(m, &sub, job.images.as_mut().unwrap());
                        job.pending_out_bytes = bytes;
                        m.registry()
                            .scope(&job_scope(id))
                            .counter("ckpt_bytes_out")
                            .add(bytes);
                        evict(job, m);
                        record_span(tracer, id, held_since, now);
                        alloc.release(&sub);
                    }
                    BoundaryKind::PhaseDone => {
                        // Boundary checkpoint: fold the dirty rows into
                        // the images and charge the delta's stream-out as
                        // a gate before the next phase may launch.
                        let bytes = capture_delta(m, &sub, job.images.as_mut().unwrap());
                        m.registry()
                            .scope(&job_scope(id))
                            .counter("ckpt_bytes_out")
                            .add(bytes);
                        let g = now + Dur::from_secs_f64(bytes as f64 / self.stream_rate);
                        if let State::Running { gate, handles, .. } = &mut job.state {
                            *gate = g;
                            *handles = None;
                        }
                    }
                    BoundaryKind::Launch if job.preempt_requested => {
                        // Evict at the gate: the boundary delta is already
                        // folded into the images and its stream-out paid.
                        evict(job, m);
                        record_span(tracer, id, held_since, now);
                        alloc.release(&sub);
                    }
                    BoundaryKind::Launch => {
                        let hs = job.spec.kernel.launch_phase(m, &sub, job.next_phase);
                        if let State::Running { handles, .. } = &mut job.state {
                            *handles = Some(hs);
                        }
                    }
                }
            }

            // 3. Age waiting jobs: one priority level per period spent
            //    queued, capped, so urgent streams cannot starve batch.
            if let Some((period, max_boost)) = self.aging {
                for job in jobs.iter_mut() {
                    if matches!(job.state, State::Queued) && now >= job.queued_at {
                        let steps = (now.since(job.queued_at).as_ps() / period.as_ps()) as u32;
                        let b = steps.min(max_boost);
                        if b > job.boost {
                            aging_promotions += b - job.boost;
                            job.boost = b;
                        }
                    }
                }
            }

            // 4. Priority preemption: if the most urgent waiting job
            //    cannot be placed, ask the least important running job
            //    (youngest on ties) to yield at its next boundary. The
            //    comparison uses *spec* priorities — an aging boost
            //    moves a job up the queue but never grants it eviction
            //    rights over its own class, else equal-priority jobs
            //    under scarcity preempt each other in an endless
            //    evict/resume cycle.
            let queued = queued_order(&jobs, now);
            if let Some(&cand) = queued.first() {
                if !alloc.can_alloc(jobs[cand].spec.dim) {
                    let cand_pri = jobs[cand].spec.priority;
                    let victim = (0..jobs.len())
                        .filter(|&id| {
                            matches!(jobs[id].state, State::Running { .. })
                                && jobs[id].spec.priority < cand_pri
                                && !jobs[id].preempt_requested
                        })
                        .min_by_key(|&id| (jobs[id].spec.priority, Reverse(id)));
                    if let Some(v) = victim {
                        jobs[v].preempt_requested = true;
                    }
                }
            }

            // 5. Backfill head reservation: when the head of the queue
            //    cannot be placed, earmark the block it should wait for
            //    and keep backfilled jobs out of it, so a wide job is
            //    never starved by a stream of small ones. A head earns
            //    its reservation only after waiting out the grace
            //    period ([`Scheduler::reserve_after`]) — before that,
            //    jobs that fit backfill greedily around it, which is
            //    the whole point of the policy. Sticky while the same
            //    head waits (the reserved block only drains); re-sited
            //    if a condemned node poisons it.
            if self.policy == Policy::FcfsBackfill {
                match queued.first() {
                    Some(&head)
                        if !alloc.can_alloc(jobs[head].spec.dim)
                            && now.since(jobs[head].queued_at) >= self.reserve_after =>
                    {
                        let stale = match &reservation {
                            Some((owner, r)) => *owner != head || alloc.has_condemned_in(r),
                            None => true,
                        };
                        if stale {
                            reservation = alloc
                                .best_reservation(jobs[head].spec.dim)
                                .map(|r| (head, r));
                        }
                    }
                    _ => reservation = None,
                }
            }

            // 6. Placement in queue order; Fcfs stops at the first job
            //    that does not fit, backfill keeps scanning but avoids
            //    the head's reserved block.
            let mut placed_any = false;
            let effs: Vec<(u32, usize)> = queued
                .iter()
                .map(|&id| (eff_priority(&jobs[id]), id))
                .collect();
            for (qi, &id) in queued.iter().enumerate() {
                let region = if qi == 0 {
                    None
                } else {
                    reservation.as_ref().map(|(_, r)| r.clone())
                };
                let placed = self.try_place(m, &mut alloc, &mut jobs[id], id, now, region.as_ref());
                placed_any |= placed;
                if placed {
                    // A placement that jumped an earlier-submitted job of
                    // equal effective priority is an EDF reorder.
                    let (my_eff, _) = effs[qi];
                    if effs[qi + 1..].iter().any(|&(e, o)| e == my_eff && o < id) {
                        edf_reorders += 1;
                    }
                }
                if !placed && self.policy == Policy::Fcfs {
                    break;
                }
            }

            if jobs.iter().all(|j| matches!(j.state, State::Done)) {
                break;
            }

            // Stall guard: nothing running, nothing placeable, nothing
            // still to arrive — condemnations have eaten the machine.
            let any_running = jobs
                .iter()
                .any(|j| matches!(j.state, State::Running { .. }));
            let any_future = jobs
                .iter()
                .any(|j| matches!(j.state, State::Queued) && now < j.queued_at);
            if !any_running && !any_future && !placed_any {
                let stuck: Vec<&str> = jobs
                    .iter()
                    .filter(|j| matches!(j.state, State::Queued))
                    .map(|j| j.spec.name.as_str())
                    .collect();
                panic!("scheduler stalled: no free subcube will ever fit {stuck:?}");
            }

            // The executor advances time only along timers, so a machine
            // whose every job is gated (e.g. all waiting out a resume
            // cost) would freeze the clock. Tick a heartbeat timer across
            // the quantum to keep scheduler time flowing regardless.
            let h = m.handle();
            let q = self.quantum;
            m.launch_on(0, async move { h.sleep(q).await });
            m.run_for(self.quantum);
        }

        // Batch summary.
        let makespan = jobs
            .iter()
            .filter_map(|j| j.done_at)
            .max()
            .map_or(Dur::ZERO, |t| t.since(t0));
        let total_wait: u64 = jobs.iter().map(|j| j.wait.as_ps()).sum();
        let node_time: f64 = jobs
            .iter()
            .map(|j| j.run.as_secs_f64() * (1u64 << j.spec.dim) as f64)
            .sum();
        let capacity = makespan.as_secs_f64() * (1u64 << machine_dim) as f64;
        let outcomes: Vec<JobOutcome> = jobs
            .iter()
            .enumerate()
            .map(|(id, j)| {
                let turnaround = j
                    .done_at
                    .expect("all jobs done")
                    .since(t0 + j.spec.submit_at);
                JobOutcome {
                    id: id as u32,
                    name: j.spec.name.clone(),
                    dim: j.spec.dim,
                    priority: j.spec.priority,
                    wait: j.wait,
                    run: j.run,
                    turnaround,
                    preemptions: j.preemptions,
                    reallocations: j.reallocations,
                    mflops: j.spec.kernel.flops(j.spec.dim) as f64
                        / j.run.as_secs_f64().max(f64::MIN_POSITIVE)
                        / 1e6,
                    missed_deadline: j.spec.deadline.is_some_and(|d| turnaround > d),
                    result: j.result.clone(),
                }
            })
            .collect();
        BatchReport {
            makespan,
            mean_wait: Dur::ps(total_wait / jobs.len().max(1) as u64),
            utilization: if capacity > 0.0 {
                node_time / capacity
            } else {
                0.0
            },
            preemptions: outcomes.iter().map(|j| j.preemptions).sum(),
            reallocations: outcomes.iter().map(|j| j.reallocations).sum(),
            aging_promotions,
            edf_reorders,
            jobs: outcomes,
        }
    }

    /// Try to give `job` a subcube. On success the job transitions to
    /// `Running` with no phase launched yet (step 2 launches once the
    /// resume gate has passed).
    fn try_place(
        &self,
        m: &mut Machine,
        alloc: &mut BuddyAllocator,
        job: &mut Job,
        id: usize,
        now: Time,
        region: Option<&Subcube>,
    ) -> bool {
        if now < job.queued_at {
            return false; // not yet arrived
        }
        let Some(sub) = alloc.alloc_outside(job.spec.dim, region) else {
            return false;
        };
        job.wait += now.since(job.queued_at);
        job.boost = 0;
        let gate = if let Some(images) = &job.images {
            let full_in: u64 = {
                m.restore_subcube(&sub, images)
                    .unwrap_or_else(|e| panic!("restore of job {id} failed: {e}"));
                images.iter().map(|im| im.len() as u64 * 4).sum()
            };
            // The restore repopulates every row; the baseline is clean.
            for p in sub.iter() {
                m.nodes[p as usize].mem_mut().clear_dirty();
            }
            let bytes = full_in + job.pending_out_bytes;
            job.pending_out_bytes = 0;
            m.registry()
                .scope(&job_scope(id))
                .counter("ckpt_bytes_in")
                .add(full_in);
            now + Dur::from_secs_f64(bytes as f64 / self.stream_rate)
        } else {
            // First placement: initialise memory, take the baseline
            // boundary checkpoint (host-side, free — streaming cost
            // is charged at resume, never on the fresh path).
            job.spec.kernel.setup(m, &sub);
            job.images = Some(m.subcube_images(&sub));
            for p in sub.iter() {
                m.nodes[p as usize].mem_mut().clear_dirty();
            }
            now
        };
        job.state = State::Running {
            sub,
            gate,
            held_since: now,
            handles: None,
        };
        true
    }
}

/// Fold the subcube's dirty rows into `images` (virtual node order) and
/// clear the dirty bits; returns the delta's wire size in bytes.
fn capture_delta(m: &Machine, sub: &Subcube, images: &mut [Vec<u32>]) -> u64 {
    let mut bytes = 0u64;
    for (v, p) in sub.iter().enumerate() {
        let mut mem = m.nodes[p as usize].mem_mut();
        let delta = mem.snapshot_delta();
        bytes += delta.bytes() as u64;
        delta.apply_to(&mut images[v]);
        mem.clear_dirty();
    }
    bytes
}

/// Metrics path prefix for one job.
fn job_scope(id: usize) -> String {
    format!("job/{id}")
}

/// One Perfetto span on the job's track for a held interval.
fn record_span(tracer: Option<&Tracer>, id: usize, start: Time, end: Time) {
    if let Some(t) = tracer {
        t.record(&job_scope(id), start, end);
    }
}

/// Waiting jobs eligible now, most urgent first: effective priority
/// descending (spec priority plus aging boost), then earliest absolute
/// deadline (EDF among equals; best-effort jobs last), then submission
/// order.
fn queued_order(jobs: &[Job], now: Time) -> Vec<usize> {
    let mut q: Vec<usize> = (0..jobs.len())
        .filter(|&id| matches!(jobs[id].state, State::Queued) && now >= jobs[id].queued_at)
        .collect();
    q.sort_by_key(|&id| {
        (
            Reverse(eff_priority(&jobs[id])),
            deadline_key(&jobs[id]),
            id,
        )
    });
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dim: u32) -> MachineCfg {
        MachineCfg::cube_small_mem(dim, 8)
    }

    #[test]
    fn single_job_batch_matches_standalone() {
        let spec = JobSpec::new("solo", 1, JobKernel::AllReduce { phases: 2 });
        let alone = run_standalone(cfg(1), &spec);
        let mut m = Machine::build(cfg(3));
        let rep = Scheduler::new(Policy::Fcfs).run_batch(&mut m, vec![spec], None);
        assert_eq!(rep.jobs[0].result, alone.result);
        assert_eq!(rep.jobs[0].preemptions, 0);
        assert!(rep.makespan > Dur::ZERO);
    }

    #[test]
    fn concurrent_jobs_stay_isolated() {
        // Four dim-1 jobs fill a 3-cube's lower half plus two more —
        // all run concurrently, none corrupts another's results.
        let mk = |i: u32| {
            JobSpec::new(
                &format!("j{i}"),
                1,
                JobKernel::AllReduce {
                    phases: 2 + (i % 2),
                },
            )
        };
        let alone: Vec<_> = (0..4).map(|i| run_standalone(cfg(1), &mk(i))).collect();
        let mut m = Machine::build(cfg(3));
        let rep =
            Scheduler::new(Policy::FcfsBackfill).run_batch(&mut m, (0..4).map(mk).collect(), None);
        for (i, a) in alone.iter().enumerate() {
            assert_eq!(
                rep.jobs[i].result, a.result,
                "job {i} diverged from its dedicated run"
            );
        }
        // All four fit at once, so nobody should have waited long.
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
    }

    #[test]
    fn deadline_outcome_is_reported() {
        let fast = JobSpec::new(
            "fast",
            0,
            JobKernel::Saxpy {
                phases: 1,
                sweeps: 1,
            },
        )
        .deadline(Dur::secs(1));
        let late = JobSpec::new(
            "late",
            0,
            JobKernel::Saxpy {
                phases: 2,
                sweeps: 4,
            },
        )
        .deadline(Dur::ps(1));
        let mut m = Machine::build(cfg(2));
        let rep = Scheduler::new(Policy::Fcfs).run_batch(&mut m, vec![fast, late], None);
        assert!(!rep.jobs[0].missed_deadline);
        assert!(rep.jobs[1].missed_deadline);
    }

    #[test]
    fn batch_run_is_deterministic() {
        let batch = || {
            vec![
                JobSpec::new("a", 2, JobKernel::AllReduce { phases: 2 }),
                JobSpec::new(
                    "b",
                    1,
                    JobKernel::Saxpy {
                        phases: 2,
                        sweeps: 3,
                    },
                ),
                JobSpec::new(
                    "c",
                    0,
                    JobKernel::Saxpy {
                        phases: 1,
                        sweeps: 2,
                    },
                ),
                JobSpec::new("d", 1, JobKernel::AllReduce { phases: 1 }),
            ]
        };
        let run = || {
            let mut m = Machine::build(cfg(2));
            Scheduler::new(Policy::FcfsBackfill)
                .run_batch(&mut m, batch(), None)
                .render()
        };
        assert_eq!(run(), run(), "same batch must render byte-identically");
    }

    /// Satellite regression: under backfill, a wide job at the head of
    /// the queue must not be starved by an open-ended stream of small
    /// jobs. The head's reservation keeps backfill out of the block it
    /// is waiting for, so it runs long before the stream drains.
    #[test]
    fn backfill_reservation_prevents_head_starvation() {
        let mut specs = vec![JobSpec::new(
            "wide",
            3,
            JobKernel::Saxpy {
                phases: 1,
                sweeps: 1,
            },
        )
        .submit_at(Dur::us(60))];
        // A dense stream of pair jobs: the first wave fills the 3-cube
        // before the wide job arrives, and fresh arrivals land faster
        // than jobs finish, so naive backfill would keep the wide head
        // waiting long past the reservation grace period — and without
        // the reservation it would run dead last.
        for i in 0..60 {
            specs.push(
                JobSpec::new(
                    &format!("s{i}"),
                    1,
                    JobKernel::Saxpy {
                        phases: 1,
                        sweeps: 6,
                    },
                )
                .submit_at(Dur::us(40 * i)),
            );
        }
        let mut m = Machine::build(cfg(3));
        let rep = Scheduler::new(Policy::FcfsBackfill).run_batch(&mut m, specs, None);
        let done_at = |j: &JobOutcome, spec_submit: Dur| spec_submit + j.turnaround;
        let wide_done = done_at(&rep.jobs[0], Dur::us(60));
        let later = rep.jobs[1..]
            .iter()
            .enumerate()
            .filter(|(i, j)| done_at(j, Dur::us(40 * *i as u64)) > wide_done)
            .count();
        assert!(
            later >= 15,
            "wide head must finish well before the stream drains ({later} after it)"
        );
    }

    #[test]
    fn aging_lets_batch_overtake_an_urgent_stream() {
        // One batch job queued behind a steady stream of *fresh* urgent
        // arrivals on a 1-cube (one job at a time) — the classic
        // starvation shape, since each new urgent job outranks the
        // waiting batch job. Without aging the batch job runs dead
        // last; with aging its boost eventually beats a fresh arrival
        // and part of the stream finishes after it.
        let build = |aging: Option<(Dur, u32)>| {
            let mut specs = vec![JobSpec::new(
                "batch",
                1,
                JobKernel::Saxpy {
                    phases: 1,
                    sweeps: 1,
                },
            )];
            for i in 0..10 {
                specs.push(
                    JobSpec::new(
                        &format!("u{i}"),
                        1,
                        JobKernel::Saxpy {
                            phases: 1,
                            sweeps: 1,
                        },
                    )
                    .priority(5)
                    .submit_at(Dur::us(100 * i)),
                );
            }
            let mut m = Machine::build(cfg(1));
            let mut s = Scheduler::new(Policy::Fcfs);
            if let Some((p, b)) = aging {
                s = s.aging(p, b);
            }
            s.run_batch(&mut m, specs, None)
        };
        let done = |jobs: &[JobOutcome]| -> Vec<Dur> {
            jobs.iter()
                .map(|j| {
                    let submit = if j.id == 0 {
                        Dur::ZERO
                    } else {
                        Dur::us(100 * (j.id as u64 - 1))
                    };
                    submit + j.turnaround
                })
                .collect()
        };
        let plain = build(None);
        assert_eq!(plain.aging_promotions, 0);
        let d = done(&plain.jobs);
        assert!(
            d[1..].iter().all(|&t| t <= d[0]),
            "without aging the batch job finishes last"
        );
        let aged = build(Some((Dur::us(100), 8)));
        assert!(aged.aging_promotions > 0, "waiting must earn promotions");
        let d = done(&aged.jobs);
        assert!(
            d[1..].iter().any(|&t| t > d[0]),
            "with aging the batch job must overtake part of the stream"
        );
    }

    #[test]
    fn edf_orders_equal_priority_jobs_by_deadline() {
        // Three same-priority jobs with inverted deadline order on a
        // 1-cube: placement must follow deadlines, not submission ids.
        let specs = vec![
            JobSpec::new("loose", 1, JobKernel::AllReduce { phases: 1 }).deadline(Dur::ms(30)),
            JobSpec::new("mid", 1, JobKernel::AllReduce { phases: 1 }).deadline(Dur::ms(20)),
            JobSpec::new("tight", 1, JobKernel::AllReduce { phases: 1 }).deadline(Dur::ms(10)),
        ];
        let mut m = Machine::build(cfg(1));
        let rep = Scheduler::new(Policy::Fcfs).run_batch(&mut m, specs, None);
        assert!(rep.edf_reorders > 0, "deadline order differs from id order");
        let done: Vec<Dur> = rep.jobs.iter().map(|j| j.turnaround).collect();
        assert!(
            done[2] < done[1] && done[1] < done[0],
            "completion must follow deadline order, got {done:?}"
        );
    }
}
