//! Buddy subcube allocator over the binary n-cube's address space.
//!
//! A d-subcube aligned to the low d address bits occupies node ids
//! `base .. base + 2^d` with `base` a multiple of `2^d` — exactly the
//! blocks of a classical buddy allocator over the id space. Splitting an
//! aligned k-block yields two aligned (k−1)-blocks whose bases differ in
//! bit k−1 (the *buddies*); freeing re-merges a block with its buddy
//! whenever both are free, so an idle machine always coalesces back to
//! one free n-cube.
//!
//! Module affinity falls out of alignment: the paper's 8-node module is
//! the aligned 3-subcube `ids 8m .. 8m+8`, and any aligned block of
//! order ≤ 3 sits inside one module (its base mod 8 is a multiple of its
//! size, so the block cannot straddle a multiple of 8). Allocating the
//! lowest free base first additionally packs jobs into the lowest
//! modules, keeping the high ids free for wide jobs.
//!
//! Everything is deterministic: free lists are kept sorted and the
//! allocator always picks the smallest sufficient block at the lowest
//! base, so the same request sequence yields the same placements.

use ts_cube::{NodeId, Subcube};

/// Buddy allocator handing out aligned subcubes of a `dim`-cube.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    dim: u32,
    /// `free[k]` holds the bases of free aligned k-blocks, sorted.
    free: Vec<Vec<NodeId>>,
    /// Nodes removed from service by [`BuddyAllocator::condemn`].
    condemned: u32,
}

impl BuddyAllocator {
    /// An allocator for the whole `dim`-cube, initially one free n-block.
    pub fn new(dim: u32) -> BuddyAllocator {
        let mut free = vec![Vec::new(); dim as usize + 1];
        free[dim as usize].push(0);
        BuddyAllocator {
            dim,
            free,
            condemned: 0,
        }
    }

    /// The machine dimension this allocator covers.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Allocate an aligned d-subcube, or `None` if no block fits.
    /// Deterministic best-fit: the smallest free order that can satisfy
    /// the request, split down to size, lowest base first.
    pub fn alloc(&mut self, d: u32) -> Option<Subcube> {
        if d > self.dim {
            return None;
        }
        let mut k = (d..=self.dim).find(|&k| !self.free[k as usize].is_empty())?;
        let base = self.free[k as usize].remove(0);
        while k > d {
            k -= 1;
            // Keep the low half; its buddy (the high half) becomes free.
            Self::insert(&mut self.free[k as usize], base | (1 << k));
        }
        Some(Subcube::aligned(base, d))
    }

    /// Would [`BuddyAllocator::alloc`]`(d)` currently succeed?
    pub fn can_alloc(&self, d: u32) -> bool {
        d <= self.dim && (d..=self.dim).any(|k| !self.free[k as usize].is_empty())
    }

    /// Return an allocated subcube, coalescing with free buddies as far
    /// as possible. The subcube must have come from [`BuddyAllocator::alloc`].
    pub fn release(&mut self, sub: &Subcube) {
        let mut d = sub.dim();
        let mut base = sub.base();
        while d < self.dim {
            let buddy = base ^ (1 << d);
            match self.free[d as usize].binary_search(&buddy) {
                Ok(i) => {
                    self.free[d as usize].remove(i);
                    base &= !(1 << d);
                    d += 1;
                }
                Err(_) => break,
            }
        }
        Self::insert(&mut self.free[d as usize], base);
    }

    /// Permanently remove the *failed* nodes of an allocated subcube from
    /// service, splitting the block buddy-by-buddy: any aligned sub-block
    /// containing no failed node goes back to the free lists (coalescing
    /// as usual), while each failed node is retired alone. Condemned
    /// nodes are simply never handed out again: their parked tasks and
    /// corrupt memory can do no harm there. Failed ids outside `sub` are
    /// ignored; with no failed id inside, the whole block is released.
    pub fn condemn(&mut self, sub: &Subcube, failed: &[NodeId]) {
        self.condemn_block(sub.base(), sub.dim(), failed);
    }

    fn condemn_block(&mut self, base: NodeId, d: u32, failed: &[NodeId]) {
        let size = 1u32 << d;
        if !failed.iter().any(|&n| n >= base && n < base + size) {
            self.release(&Subcube::aligned(base, d));
            return;
        }
        if d == 0 {
            self.condemned += 1;
            return;
        }
        self.condemn_block(base, d - 1, failed);
        self.condemn_block(base | (1 << (d - 1)), d - 1, failed);
    }

    /// Nodes currently free (not allocated, not condemned).
    pub fn free_nodes(&self) -> u32 {
        self.free
            .iter()
            .enumerate()
            .map(|(k, v)| (v.len() as u32) << k)
            .sum()
    }

    /// Nodes permanently out of service.
    pub fn condemned_nodes(&self) -> u32 {
        self.condemned
    }

    /// True when every non-condemned node has coalesced back into free
    /// blocks — with nothing condemned, exactly one free n-block.
    pub fn is_idle(&self) -> bool {
        self.free_nodes() + self.condemned == 1 << self.dim
    }

    fn insert(list: &mut Vec<NodeId>, base: NodeId) {
        match list.binary_search(&base) {
            Ok(_) => panic!("block {base} double-freed"),
            Err(i) => list.insert(i, base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_sim::Rng;

    #[test]
    fn splits_to_the_lowest_base_and_coalesces_back() {
        let mut a = BuddyAllocator::new(4);
        let s0 = a.alloc(2).unwrap();
        let s1 = a.alloc(2).unwrap();
        let s2 = a.alloc(3).unwrap();
        assert_eq!((s0.base(), s1.base(), s2.base()), (0, 4, 8));
        assert!(!a.can_alloc(3), "only 16 nodes; all allocated");
        a.release(&s0);
        a.release(&s2);
        a.release(&s1);
        assert!(a.is_idle(), "all frees must coalesce to one 4-block");
        assert_eq!(a.alloc(4).unwrap().base(), 0);
    }

    #[test]
    fn small_blocks_never_straddle_a_module() {
        let mut a = BuddyAllocator::new(6);
        for d in [0, 1, 2, 3, 0, 3, 2, 1, 3] {
            let s = a.alloc(d).unwrap();
            assert!(
                s.within_one_module(),
                "dim-{d} block at {} straddles a module",
                s.base()
            );
        }
    }

    /// Satellite: random alloc/free sequences never overlap, always
    /// coalesce back to one free n-cube, and are deterministic.
    #[test]
    fn random_alloc_free_is_safe_and_deterministic() {
        let run = |seed: u64| {
            let mut rng = Rng::new(seed);
            let mut a = BuddyAllocator::new(4);
            let mut live: Vec<Subcube> = Vec::new();
            let mut placements = Vec::new();
            for _ in 0..400 {
                if rng.bool() && !live.is_empty() {
                    let i = rng.range(0, live.len());
                    a.release(&live.swap_remove(i));
                } else if let Some(s) = a.alloc(rng.range(0, 4) as u32) {
                    for other in &live {
                        assert!(s.disjoint(other), "{s:?} overlaps {other:?}");
                    }
                    placements.push((s.base(), s.dim()));
                    live.push(s);
                }
            }
            for s in live.drain(..) {
                a.release(&s);
            }
            assert!(a.is_idle(), "full free must coalesce back to the n-cube");
            placements
        };
        for seed in 0..8 {
            assert_eq!(run(seed), run(seed), "same seed must replay identically");
        }
    }

    #[test]
    fn condemned_blocks_never_come_back() {
        let mut a = BuddyAllocator::new(2);
        let s = a.alloc(1).unwrap();
        let failed = s.base(); // one node of the pair died
        a.condemn(&s, &[failed]);
        assert_eq!(a.condemned_nodes(), 1, "only the failed node is retired");
        let t = a.alloc(1).unwrap();
        assert!(s.disjoint(&t), "a pair request must avoid the broken pair");
        a.release(&t);
        assert!(
            a.alloc(2).is_none(),
            "the full cube can never be whole again"
        );
        // The healthy buddy of the failed node is still individually
        // allocatable.
        let lone = a.alloc(0).unwrap();
        assert_eq!(lone.base(), failed ^ 1, "the survivor buddy comes back");
    }

    /// Satellite property test: for random failure sets, condemned count
    /// equals the number of failed nodes inside the block, every freed
    /// block is overlap-free with every other allocation, and the split
    /// is deterministic.
    #[test]
    fn condemn_retires_exactly_the_failed_nodes() {
        let run = |seed: u64| {
            let mut rng = Rng::new(seed);
            let mut a = BuddyAllocator::new(6);
            let sub = a.alloc(4).unwrap();
            let nfail = 1 + rng.range(0, 5);
            let mut failed: Vec<NodeId> = Vec::new();
            while failed.len() < nfail {
                let n = sub.base() + rng.range(0, 1 << 4) as NodeId;
                if !failed.contains(&n) {
                    failed.push(n);
                }
            }
            a.condemn(&sub, &failed);
            assert_eq!(
                a.condemned_nodes(),
                failed.len() as u32,
                "condemned count must equal failed nodes"
            );
            // Drain the allocator with single nodes: every survivor of the
            // condemned block (and the rest of the cube) comes back exactly
            // once, and no failed node is ever re-issued.
            let mut seen = Vec::new();
            while let Some(s) = a.alloc(0) {
                assert!(
                    !failed.contains(&s.base()),
                    "failed node {} re-issued",
                    s.base()
                );
                assert!(!seen.contains(&s.base()), "node {} issued twice", s.base());
                seen.push(s.base());
            }
            assert_eq!(seen.len() as u32, (1 << 6) - failed.len() as u32);
            seen
        };
        for seed in [7u64, 42, 1986, 0xD1CE] {
            assert_eq!(run(seed), run(seed), "same seed must replay identically");
        }
    }
}
