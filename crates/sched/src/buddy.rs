//! Buddy subcube allocator over the binary n-cube's address space.
//!
//! A d-subcube aligned to the low d address bits occupies node ids
//! `base .. base + 2^d` with `base` a multiple of `2^d` — exactly the
//! blocks of a classical buddy allocator over the id space. Splitting an
//! aligned k-block yields two aligned (k−1)-blocks whose bases differ in
//! bit k−1 (the *buddies*); freeing re-merges a block with its buddy
//! whenever both are free, so an idle machine always coalesces back to
//! one free n-cube.
//!
//! Module affinity falls out of alignment: the paper's 8-node module is
//! the aligned 3-subcube `ids 8m .. 8m+8`, and any aligned block of
//! order ≤ 3 sits inside one module (its base mod 8 is a multiple of its
//! size, so the block cannot straddle a multiple of 8). Allocating the
//! lowest free base first additionally packs jobs into the lowest
//! modules, keeping the high ids free for wide jobs.
//!
//! Everything is deterministic: free lists are kept sorted and the
//! allocator always picks the smallest sufficient block at the lowest
//! base, so the same request sequence yields the same placements.

use ts_cube::{NodeId, Subcube};

/// Buddy allocator handing out aligned subcubes of a `dim`-cube.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    dim: u32,
    /// `free[k]` holds the bases of free aligned k-blocks, sorted.
    free: Vec<Vec<NodeId>>,
    /// Node ids removed from service by [`BuddyAllocator::condemn`],
    /// sorted. Kept as ids (not a count) so reservation placement can
    /// avoid blocks that will never be whole again.
    condemned: Vec<NodeId>,
}

impl BuddyAllocator {
    /// An allocator for the whole `dim`-cube, initially one free n-block.
    pub fn new(dim: u32) -> BuddyAllocator {
        let mut free = vec![Vec::new(); dim as usize + 1];
        free[dim as usize].push(0);
        BuddyAllocator {
            dim,
            free,
            condemned: Vec::new(),
        }
    }

    /// The machine dimension this allocator covers.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Allocate an aligned d-subcube, or `None` if no block fits.
    /// Deterministic best-fit: the smallest free order that can satisfy
    /// the request, split down to size, lowest base first.
    pub fn alloc(&mut self, d: u32) -> Option<Subcube> {
        if d > self.dim {
            return None;
        }
        let mut k = (d..=self.dim).find(|&k| !self.free[k as usize].is_empty())?;
        let base = self.free[k as usize].remove(0);
        while k > d {
            k -= 1;
            // Keep the low half; its buddy (the high half) becomes free.
            Self::insert(&mut self.free[k as usize], base | (1 << k));
        }
        Some(Subcube::aligned(base, d))
    }

    /// Would [`BuddyAllocator::alloc`]`(d)` currently succeed?
    pub fn can_alloc(&self, d: u32) -> bool {
        d <= self.dim && (d..=self.dim).any(|k| !self.free[k as usize].is_empty())
    }

    /// Return an allocated subcube, coalescing with free buddies as far
    /// as possible. The subcube must have come from [`BuddyAllocator::alloc`].
    pub fn release(&mut self, sub: &Subcube) {
        let mut d = sub.dim();
        let mut base = sub.base();
        while d < self.dim {
            let buddy = base ^ (1 << d);
            match self.free[d as usize].binary_search(&buddy) {
                Ok(i) => {
                    self.free[d as usize].remove(i);
                    base &= !(1 << d);
                    d += 1;
                }
                Err(_) => break,
            }
        }
        Self::insert(&mut self.free[d as usize], base);
    }

    /// Permanently remove the *failed* nodes of an allocated subcube from
    /// service, splitting the block buddy-by-buddy: any aligned sub-block
    /// containing no failed node goes back to the free lists (coalescing
    /// as usual), while each failed node is retired alone. Condemned
    /// nodes are simply never handed out again: their parked tasks and
    /// corrupt memory can do no harm there. Failed ids outside `sub` are
    /// ignored; with no failed id inside, the whole block is released.
    pub fn condemn(&mut self, sub: &Subcube, failed: &[NodeId]) {
        self.condemn_block(sub.base(), sub.dim(), failed);
    }

    fn condemn_block(&mut self, base: NodeId, d: u32, failed: &[NodeId]) {
        let size = 1u32 << d;
        if !failed.iter().any(|&n| n >= base && n < base + size) {
            self.release(&Subcube::aligned(base, d));
            return;
        }
        if d == 0 {
            Self::insert(&mut self.condemned, base);
            return;
        }
        self.condemn_block(base, d - 1, failed);
        self.condemn_block(base | (1 << (d - 1)), d - 1, failed);
    }

    /// Nodes currently free (not allocated, not condemned).
    pub fn free_nodes(&self) -> u32 {
        self.free
            .iter()
            .enumerate()
            .map(|(k, v)| (v.len() as u32) << k)
            .sum()
    }

    /// Nodes permanently out of service.
    pub fn condemned_nodes(&self) -> u32 {
        self.condemned.len() as u32
    }

    /// Does `sub` contain a condemned node? A reservation whose region
    /// is poisoned can never fill and must be re-sited.
    pub fn has_condemned_in(&self, sub: &Subcube) -> bool {
        self.condemned
            .iter()
            .any(|&n| block_contains(sub.base(), sub.dim(), n, 0))
    }

    /// True when every non-condemned node has coalesced back into free
    /// blocks — with nothing condemned, exactly one free n-block.
    pub fn is_idle(&self) -> bool {
        self.free_nodes() + self.condemned_nodes() == 1 << self.dim
    }

    /// The aligned d-block a blocked head job should wait for: the one
    /// with the most currently-free nodes (so it drains soonest as the
    /// jobs inside finish), never one containing a condemned node (it
    /// can never be whole again), lowest base on ties. `None` only when
    /// every d-block is poisoned by a condemned node or `d > dim`.
    pub fn best_reservation(&self, d: u32) -> Option<Subcube> {
        if d > self.dim {
            return None;
        }
        let nblocks = 1usize << (self.dim - d);
        let mut free_in = vec![0u32; nblocks];
        for (k, list) in self.free.iter().enumerate() {
            for &base in list {
                if (k as u32) >= d {
                    // A free block of order ≥ d spans whole d-blocks;
                    // mark each as completely free.
                    for i in 0..(1usize << (k as u32 - d)) {
                        free_in[(base as usize >> d) + i] = 1 << d;
                    }
                } else {
                    free_in[base as usize >> d] += 1 << k;
                }
            }
        }
        let mut poisoned = vec![false; nblocks];
        for &n in &self.condemned {
            poisoned[n as usize >> d] = true;
        }
        let mut best: Option<(u32, usize)> = None;
        for (i, &f) in free_in.iter().enumerate() {
            if !poisoned[i] && best.is_none_or(|(bf, _)| f > bf) {
                best = Some((f, i));
            }
        }
        best.map(|(_, i)| Subcube::aligned((i as NodeId) << d, d))
    }

    /// Allocate an aligned d-subcube *disjoint from* `region` (a
    /// reserved aligned block that a waiting head job is draining).
    /// First preference: the smallest free block wholly outside the
    /// region, split as usual. Fallback: a free block strictly
    /// containing the region, split so that at every level the half
    /// holding the region goes back on the free lists and the other
    /// half is carved down to size. With no region this is
    /// [`BuddyAllocator::alloc`].
    pub fn alloc_outside(&mut self, d: u32, region: Option<&Subcube>) -> Option<Subcube> {
        let Some(r) = region else {
            return self.alloc(d);
        };
        if d > self.dim {
            return None;
        }
        // Pass 1: a free block of sufficient order wholly disjoint from
        // the region. Smallest order first, lowest base first, exactly
        // like `alloc` but skipping blocks the region touches.
        for k in d..=self.dim {
            let hit = self.free[k as usize]
                .iter()
                .position(|&b| !blocks_overlap(b, k, r.base(), r.dim()));
            if let Some(pos) = hit {
                let base = self.free[k as usize].remove(pos);
                let mut kk = k;
                while kk > d {
                    kk -= 1;
                    Self::insert(&mut self.free[kk as usize], base | (1 << kk));
                }
                return Some(Subcube::aligned(base, d));
            }
        }
        // Pass 2: a free block strictly containing the region. Each
        // split isolates the region in one half; keep the other. After
        // the first split the kept half is region-free, so the rest is
        // an ordinary lowest-base carve.
        let start = (r.dim() + 1).max(d + 1);
        for k in start..=self.dim {
            let hit = self.free[k as usize]
                .iter()
                .position(|&b| block_contains(b, k, r.base(), r.dim()));
            if let Some(pos) = hit {
                let mut base = self.free[k as usize].remove(pos);
                let mut kk = k;
                while kk > d {
                    kk -= 1;
                    let high = base | (1 << kk);
                    if block_contains(base, kk, r.base(), r.dim()) {
                        // Region is in the low half: free it, keep high.
                        Self::insert(&mut self.free[kk as usize], base);
                        base = high;
                    } else {
                        Self::insert(&mut self.free[kk as usize], high);
                    }
                }
                return Some(Subcube::aligned(base, d));
            }
        }
        None
    }

    fn insert(list: &mut Vec<NodeId>, base: NodeId) {
        match list.binary_search(&base) {
            Ok(_) => panic!("block {base} double-freed"),
            Err(i) => list.insert(i, base),
        }
    }
}

/// Two aligned blocks overlap iff the smaller lies inside the larger.
fn blocks_overlap(b1: NodeId, d1: u32, b2: NodeId, d2: u32) -> bool {
    let d = d1.max(d2);
    (b1 >> d) == (b2 >> d)
}

/// Does the aligned `(outer, od)` block contain the `(inner, id)` block
/// (equality counts as containment)?
fn block_contains(outer: NodeId, od: u32, inner: NodeId, id: u32) -> bool {
    od >= id && (inner >> od) == (outer >> od)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_sim::Rng;

    #[test]
    fn splits_to_the_lowest_base_and_coalesces_back() {
        let mut a = BuddyAllocator::new(4);
        let s0 = a.alloc(2).unwrap();
        let s1 = a.alloc(2).unwrap();
        let s2 = a.alloc(3).unwrap();
        assert_eq!((s0.base(), s1.base(), s2.base()), (0, 4, 8));
        assert!(!a.can_alloc(3), "only 16 nodes; all allocated");
        a.release(&s0);
        a.release(&s2);
        a.release(&s1);
        assert!(a.is_idle(), "all frees must coalesce to one 4-block");
        assert_eq!(a.alloc(4).unwrap().base(), 0);
    }

    #[test]
    fn small_blocks_never_straddle_a_module() {
        let mut a = BuddyAllocator::new(6);
        for d in [0, 1, 2, 3, 0, 3, 2, 1, 3] {
            let s = a.alloc(d).unwrap();
            assert!(
                s.within_one_module(),
                "dim-{d} block at {} straddles a module",
                s.base()
            );
        }
    }

    /// Satellite: random alloc/free sequences never overlap, always
    /// coalesce back to one free n-cube, and are deterministic.
    #[test]
    fn random_alloc_free_is_safe_and_deterministic() {
        let run = |seed: u64| {
            let mut rng = Rng::new(seed);
            let mut a = BuddyAllocator::new(4);
            let mut live: Vec<Subcube> = Vec::new();
            let mut placements = Vec::new();
            for _ in 0..400 {
                if rng.bool() && !live.is_empty() {
                    let i = rng.range(0, live.len());
                    a.release(&live.swap_remove(i));
                } else if let Some(s) = a.alloc(rng.range(0, 4) as u32) {
                    for other in &live {
                        assert!(s.disjoint(other), "{s:?} overlaps {other:?}");
                    }
                    placements.push((s.base(), s.dim()));
                    live.push(s);
                }
            }
            for s in live.drain(..) {
                a.release(&s);
            }
            assert!(a.is_idle(), "full free must coalesce back to the n-cube");
            placements
        };
        for seed in 0..8 {
            assert_eq!(run(seed), run(seed), "same seed must replay identically");
        }
    }

    #[test]
    fn condemned_blocks_never_come_back() {
        let mut a = BuddyAllocator::new(2);
        let s = a.alloc(1).unwrap();
        let failed = s.base(); // one node of the pair died
        a.condemn(&s, &[failed]);
        assert_eq!(a.condemned_nodes(), 1, "only the failed node is retired");
        let t = a.alloc(1).unwrap();
        assert!(s.disjoint(&t), "a pair request must avoid the broken pair");
        a.release(&t);
        assert!(
            a.alloc(2).is_none(),
            "the full cube can never be whole again"
        );
        // The healthy buddy of the failed node is still individually
        // allocatable.
        let lone = a.alloc(0).unwrap();
        assert_eq!(lone.base(), failed ^ 1, "the survivor buddy comes back");
    }

    /// Satellite property test: for random failure sets, condemned count
    /// equals the number of failed nodes inside the block, every freed
    /// block is overlap-free with every other allocation, and the split
    /// is deterministic.
    #[test]
    fn condemn_retires_exactly_the_failed_nodes() {
        let run = |seed: u64| {
            let mut rng = Rng::new(seed);
            let mut a = BuddyAllocator::new(6);
            let sub = a.alloc(4).unwrap();
            let nfail = 1 + rng.range(0, 5);
            let mut failed: Vec<NodeId> = Vec::new();
            while failed.len() < nfail {
                let n = sub.base() + rng.range(0, 1 << 4) as NodeId;
                if !failed.contains(&n) {
                    failed.push(n);
                }
            }
            a.condemn(&sub, &failed);
            assert_eq!(
                a.condemned_nodes(),
                failed.len() as u32,
                "condemned count must equal failed nodes"
            );
            // Drain the allocator with single nodes: every survivor of the
            // condemned block (and the rest of the cube) comes back exactly
            // once, and no failed node is ever re-issued.
            let mut seen = Vec::new();
            while let Some(s) = a.alloc(0) {
                assert!(
                    !failed.contains(&s.base()),
                    "failed node {} re-issued",
                    s.base()
                );
                assert!(!seen.contains(&s.base()), "node {} issued twice", s.base());
                seen.push(s.base());
            }
            assert_eq!(seen.len() as u32, (1 << 6) - failed.len() as u32);
            seen
        };
        for seed in [7u64, 42, 1986, 0xD1CE] {
            assert_eq!(run(seed), run(seed), "same seed must replay identically");
        }
    }

    /// Satellite: open-churn property test. Millions of seeded
    /// alloc/free/condemn cycles — the kind of turnover an open arrival
    /// stream produces — holding the node-count invariant
    /// `free + live + condemned == 2^dim` at every step, never
    /// overlapping a live block, never leaking, and coalescing fully
    /// (no two free buddies coexist) once drained. Same seed, same run.
    #[test]
    fn open_churn_preserves_node_accounting() {
        const DIM: u32 = 8;
        const OPS: usize = 1_000_000;
        let run = |seed: u64| {
            let mut rng = Rng::new(seed);
            let mut a = BuddyAllocator::new(DIM);
            let mut live: Vec<Subcube> = Vec::new();
            let mut live_nodes = 0u32;
            let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            let fold = |x: u64, digest: &mut u64| {
                *digest = (*digest ^ x).wrapping_mul(0x1000_0000_01b3);
            };
            for step in 0..OPS {
                let roll = rng.below(100);
                if roll < 48 || live.is_empty() {
                    // Arrival: sizes skewed small, like a real mix.
                    let d = match rng.below(10) {
                        0..=4 => rng.below(2) as u32,
                        5..=7 => 2 + rng.below(2) as u32,
                        _ => 4 + rng.below(2) as u32,
                    };
                    if let Some(s) = a.alloc(d) {
                        fold(((s.base() as u64) << 8) | d as u64, &mut digest);
                        live_nodes += 1 << d;
                        live.push(s);
                    }
                } else if roll < 96 {
                    // Completion: free a random live block.
                    let i = rng.range(0, live.len());
                    let s = live.swap_remove(i);
                    live_nodes -= 1 << s.dim();
                    a.release(&s);
                } else {
                    // Fault: condemn one random node of a live block,
                    // capped so the machine keeps most of its capacity.
                    if a.condemned_nodes() < (1 << DIM) / 8 {
                        let i = rng.range(0, live.len());
                        let s = live.swap_remove(i);
                        let bad = s.base() + rng.below(1 << s.dim()) as NodeId;
                        live_nodes -= 1 << s.dim();
                        a.condemn(&s, &[bad]);
                        fold(0x8000_0000_0000_0000 | bad as u64, &mut digest);
                    }
                }
                assert_eq!(
                    a.free_nodes() + live_nodes + a.condemned_nodes(),
                    1 << DIM,
                    "node accounting broke at step {step}"
                );
            }
            // Occasionally verified in full: live blocks are disjoint.
            for (i, s) in live.iter().enumerate() {
                for t in &live[i + 1..] {
                    assert!(s.disjoint(t), "{s:?} overlaps {t:?}");
                }
            }
            // Drain and check full coalescing: no free block's buddy is
            // also free (they would have merged), and nothing leaked.
            for s in live.drain(..) {
                a.release(&s);
            }
            assert!(a.is_idle(), "drained allocator must account for all nodes");
            for (k, list) in a.free.iter().enumerate() {
                if (k as u32) < DIM {
                    for &b in list {
                        assert!(
                            list.binary_search(&(b ^ (1 << k))).is_err(),
                            "free buddies {b} / {} failed to coalesce",
                            b ^ (1 << k)
                        );
                    }
                }
            }
            fold(a.condemned_nodes() as u64, &mut digest);
            digest
        };
        for seed in [3u64, 0xFEED] {
            assert_eq!(run(seed), run(seed), "same seed must replay identically");
        }
    }

    #[test]
    fn best_reservation_prefers_the_emptiest_healthy_block() {
        let mut a = BuddyAllocator::new(4);
        // Fill the low half with pairs, leave the high half free-ish.
        let _s0 = a.alloc(1).unwrap(); // 0..2
        let _s1 = a.alloc(1).unwrap(); // 2..4
        let _s2 = a.alloc(2).unwrap(); // 4..8
                                       // High 3-block (8..16) is completely free: best for a 3-wide head.
        let r = a.best_reservation(3).unwrap();
        assert_eq!((r.base(), r.dim()), (8, 3));
        // Poison the high half: one condemned node disqualifies it.
        let wide = a.alloc(3).unwrap(); // 8..16
        a.condemn(&wide, &[9]);
        let r = a.best_reservation(3).unwrap();
        assert_eq!(r.base(), 0, "condemned block skipped; low half is next");
    }

    #[test]
    fn alloc_outside_carves_around_the_reserved_region() {
        let mut a = BuddyAllocator::new(4);
        let region = Subcube::aligned(0, 3); // reserve 0..8 for the head
                                             // Disjoint free block exists (8..16): ordinary lowest-base alloc
                                             // from outside the region.
        let s = a.alloc_outside(1, Some(&region)).unwrap();
        assert_eq!((s.base(), s.dim()), (8, 1));
        // Exhaust everything outside; requests must fail rather than
        // eat the reservation.
        let rest = a.alloc_outside(3, Some(&region));
        assert!(rest.is_none(), "8..16 has only 6 nodes left");
        let t = a.alloc_outside(2, Some(&region)).unwrap();
        assert_eq!(t.base(), 12);
        assert_eq!(a.alloc_outside(1, Some(&region)).unwrap().base(), 10);
        assert!(a.alloc_outside(0, Some(&region)).is_none());
        assert!(
            a.can_alloc(3),
            "the reserved 3-block itself is still free for the head"
        );
        // Without a region the reservation is fair game.
        assert_eq!(a.alloc_outside(3, None).unwrap().base(), 0);

        // Pass 2: only a containing block is free. On a fresh cube,
        // reserve the pair 0..2 and drain singles: every carve splits
        // around the pair, never handing out node 0 or 1.
        let mut b = BuddyAllocator::new(3);
        let narrow = Subcube::aligned(0, 1);
        let mut got = Vec::new();
        while let Some(s) = b.alloc_outside(0, Some(&narrow)) {
            got.push(s.base());
        }
        got.sort_unstable();
        assert_eq!(got, vec![2, 3, 4, 5, 6, 7]);
        assert!(b.can_alloc(1), "the reserved pair survives intact");
    }
}
