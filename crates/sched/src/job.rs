//! Job specifications and the kernels a job can run.
//!
//! A job is a gang-scheduled SPMD program over a d-subcube, structured —
//! like [`t_series_core::supervisor`] phases — as replayable units whose
//! entire effect is on node memory. That structure is what makes both
//! preemption and fault recovery cheap: at a phase boundary the partition
//! has no live tasks, so the job's complete state is its node memory
//! images, and restoring those images on *any* d-subcube and replaying
//! the remaining phases reproduces the original results bit-identically.
//!
//! Kernels address nodes only by **virtual id** (the relabeled
//! [`ts_node::NodeCtx::id`] inside a subcube view), so the same job is
//! bit-identical whether it runs at base 0 of a dedicated d-cube or on
//! any aligned d-subcube of a shared machine.

use t_series_core::{collectives, Machine};
use ts_cube::{Hypercube, Subcube};
use ts_fpu::Sf64;
use ts_mem::ROW_WORDS;
use ts_node::CombineOp;
use ts_sim::{Dur, JoinHandle};
use ts_vec::VecForm;

/// Elements per node in the SAXPY kernel (one 256-word row of f64s).
const SAXPY_LEN: usize = 128;
/// Values per node in the all-reduce kernel.
const AR_LEN: usize = 8;

/// What a job computes. Every kernel is phase-structured and a pure
/// function of node memory and virtual node ids (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKernel {
    /// Vector-unit bound: each phase runs `sweeps` chained SAXPY passes
    /// (`acc += ones`) per node. No communication — legal at any dim
    /// including a single node.
    Saxpy {
        /// Replayable phases.
        phases: u32,
        /// SAXPY passes per phase.
        sweeps: u32,
    },
    /// Link bound: each phase all-reduces an 8-value vector across the
    /// subcube, then adds the node's virtual id back in (so node states
    /// diverge again and every phase has fresh work).
    AllReduce {
        /// Replayable phases.
        phases: u32,
    },
    /// Pure occupancy: every node of the partition sleeps for `dur` of
    /// simulated time, touching no memory. The workhorse of synthetic
    /// open-arrival streams — a job that holds its subcube for exactly
    /// its service demand with no vector or link traffic.
    Sleep {
        /// How long each node holds its place.
        dur: Dur,
    },
}

impl JobKernel {
    /// Phases in the job.
    pub fn phases(&self) -> u32 {
        match *self {
            JobKernel::Saxpy { phases, .. } | JobKernel::AllReduce { phases } => phases,
            JobKernel::Sleep { .. } => 1,
        }
    }

    /// Initialise the partition's node memory by virtual id. Host-side
    /// and zero-time, like the supervisor's setup step.
    pub fn setup(&self, m: &Machine, sub: &Subcube) {
        for v in 0..sub.len() {
            let node = &m.nodes[sub.to_phys(v) as usize];
            let mut mem = node.mem_mut();
            match *self {
                JobKernel::Saxpy { .. } => {
                    let acc = mem.cfg().rows_a() * ROW_WORDS;
                    for i in 0..SAXPY_LEN {
                        mem.write_f64(2 * i, Sf64::from(1.0)).unwrap();
                        mem.write_f64(acc + 2 * i, Sf64::from(v as f64)).unwrap();
                    }
                }
                JobKernel::AllReduce { .. } => {
                    for i in 0..AR_LEN {
                        let seed = (v as usize * AR_LEN + i + 1) as f64;
                        mem.write_f64(2 * i, Sf64::from(seed)).unwrap();
                    }
                }
                JobKernel::Sleep { .. } => {}
            }
        }
    }

    /// Launch one phase as an SPMD gang over the partition. The caller
    /// drives the simulation; the phase is complete when every returned
    /// handle is finished.
    pub fn launch_phase(&self, m: &mut Machine, sub: &Subcube, _phase: u32) -> Vec<JoinHandle<()>> {
        let cube = Hypercube::new(sub.dim());
        match *self {
            JobKernel::Saxpy { sweeps, .. } => m.launch_subcube(sub, move |ctx| async move {
                let rows_a = ctx.mem().cfg().rows_a();
                for _ in 0..sweeps {
                    let r = ctx
                        .vec(
                            VecForm::Saxpy(Sf64::from(1.0)),
                            0,
                            rows_a,
                            rows_a,
                            SAXPY_LEN,
                        )
                        .await;
                    if r.is_err() {
                        return;
                    }
                }
            }),
            JobKernel::AllReduce { .. } => m.launch_subcube(sub, move |ctx| async move {
                let mine: Vec<Sf64> = (0..AR_LEN)
                    .map(|i| ctx.mem().read_f64(2 * i).unwrap())
                    .collect();
                let mut acc = collectives::allreduce(&ctx, cube, CombineOp::Add, mine).await;
                let vid = vec![Sf64::from(ctx.id() as f64); AR_LEN];
                ctx.combine_values(CombineOp::Add, &mut acc, &vid).await;
                let mut mem = ctx.mem_mut();
                for (i, v) in acc.iter().enumerate() {
                    mem.write_f64(2 * i, *v).unwrap();
                }
            }),
            JobKernel::Sleep { dur } => m.launch_subcube(sub, move |ctx| async move {
                ctx.handle().sleep(dur).await;
            }),
        }
    }

    /// Read the job's result out of the partition's node memory, in
    /// virtual node order, as raw f64 bit patterns (the unit of the
    /// bit-identity guarantees).
    pub fn result(&self, m: &Machine, sub: &Subcube) -> Vec<u64> {
        let mut out = Vec::new();
        for v in 0..sub.len() {
            let node = &m.nodes[sub.to_phys(v) as usize];
            let mem = node.mem();
            match *self {
                JobKernel::Saxpy { .. } => {
                    let acc = mem.cfg().rows_a() * ROW_WORDS;
                    out.push(mem.read_f64(acc).unwrap().to_host().to_bits());
                    out.push(
                        mem.read_f64(acc + 2 * (SAXPY_LEN - 1))
                            .unwrap()
                            .to_host()
                            .to_bits(),
                    );
                }
                JobKernel::AllReduce { .. } => {
                    for i in 0..AR_LEN {
                        out.push(mem.read_f64(2 * i).unwrap().to_host().to_bits());
                    }
                }
                JobKernel::Sleep { .. } => {}
            }
        }
        out
    }

    /// Total floating-point operations the job performs on a d-subcube
    /// (for MFLOPS accounting; static, so accounting never perturbs the
    /// simulation).
    pub fn flops(&self, dim: u32) -> u64 {
        let nodes = 1u64 << dim;
        match *self {
            // 2 flops per SAXPY element.
            JobKernel::Saxpy { phases, sweeps } => {
                phases as u64 * sweeps as u64 * 2 * SAXPY_LEN as u64 * nodes
            }
            // One add per value per dimension exchange, plus the local
            // id add-back.
            JobKernel::AllReduce { phases } => {
                phases as u64 * nodes * AR_LEN as u64 * (dim as u64 + 1)
            }
            JobKernel::Sleep { .. } => 0,
        }
    }
}

/// One job submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable name (report rows, Perfetto track labels).
    pub name: String,
    /// Subcube dimension the job needs (`2^dim` nodes, gang-scheduled).
    pub dim: u32,
    /// What to run.
    pub kernel: JobKernel,
    /// Larger is more urgent; a queued job of strictly higher priority
    /// may preempt a running lower-priority job.
    pub priority: u32,
    /// Arrival time, relative to the batch start.
    pub submit_at: Dur,
    /// Completion deadline relative to submission, for reporting
    /// (`missed_deadline` in the job's outcome). `None` = best effort.
    pub deadline: Option<Dur>,
}

impl JobSpec {
    /// A best-effort job: priority 0, submitted at batch start, no
    /// deadline.
    pub fn new(name: &str, dim: u32, kernel: JobKernel) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            dim,
            kernel,
            priority: 0,
            submit_at: Dur::ZERO,
            deadline: None,
        }
    }

    /// Set the priority.
    pub fn priority(mut self, p: u32) -> JobSpec {
        self.priority = p;
        self
    }

    /// Set the arrival time (relative to batch start).
    pub fn submit_at(mut self, at: Dur) -> JobSpec {
        self.submit_at = at;
        self
    }

    /// Set the deadline (relative to submission).
    pub fn deadline(mut self, d: Dur) -> JobSpec {
        self.deadline = Some(d);
        self
    }
}
