//! Property tests: the software FPU against the host's IEEE-754 hardware.
//!
//! For operands and results that stay inside the normal range, flush-to-zero
//! arithmetic is bit-identical to IEEE round-to-nearest-even, so the software
//! implementation must match the host **exactly, bit for bit**. Where
//! subnormals appear we pin the documented FTZ semantics instead.
//!
//! Random cases come from the workspace's seeded [`Rng`], so the suite runs
//! offline and every failure replays.

use ts_fpu::soft::{self, B32, B64};
use ts_fpu::{softdiv, Sf32, Sf64};
use ts_sim::Rng;

/// Flush subnormals of the host representation to a same-signed zero
/// (the reference model for inputs *and* results).
fn ftz64(v: f64) -> f64 {
    if v != 0.0 && v.abs() < f64::MIN_POSITIVE {
        if v.is_sign_negative() {
            -0.0
        } else {
            0.0
        }
    } else {
        v
    }
}

fn ftz32(v: f32) -> f32 {
    if v != 0.0 && v.abs() < f32::MIN_POSITIVE {
        if v.is_sign_negative() {
            -0.0
        } else {
            0.0
        }
    } else {
        v
    }
}

/// Finite f64 whose exponent keeps +, −, × results clear of the subnormal
/// boundary, so host RNE and software FTZ agree exactly.
fn safe_f64(rng: &mut Rng) -> f64 {
    // sign × mantissa-in-[1,2) × 2^e with e in [-400, 400].
    let neg = rng.bool();
    let frac = rng.next_u64();
    let e = rng.range(0, 801) as i32 - 400;
    let m = 1.0 + (frac >> 12) as f64 / (1u64 << 52) as f64;
    let v = m * 2f64.powi(e);
    if neg {
        -v
    } else {
        v
    }
}

fn safe_f32(rng: &mut Rng) -> f32 {
    let neg = rng.bool();
    let frac = rng.next_u32();
    let e = rng.range(0, 81) as i32 - 40;
    let m = 1.0 + (frac >> 9) as f32 / (1u32 << 23) as f32;
    let v = m * 2f32.powi(e);
    if neg {
        -v
    } else {
        v
    }
}

const CASES: usize = 2000;

#[test]
fn add64_matches_host() {
    let mut rng = Rng::new(0xf9a0_0001);
    for _ in 0..CASES {
        let (a, b) = (safe_f64(&mut rng), safe_f64(&mut rng));
        let sw = (Sf64::from(a) + Sf64::from(b)).to_bits();
        let host = (a + b).to_bits();
        assert_eq!(sw, host, "{a} + {b}");
    }
}

#[test]
fn sub64_matches_host() {
    let mut rng = Rng::new(0xf9a0_0002);
    for _ in 0..CASES {
        let (a, b) = (safe_f64(&mut rng), safe_f64(&mut rng));
        let sw = (Sf64::from(a) - Sf64::from(b)).to_bits();
        let host = (a - b).to_bits();
        assert_eq!(sw, host, "{a} - {b}");
    }
}

#[test]
fn mul64_matches_host() {
    let mut rng = Rng::new(0xf9a0_0003);
    for _ in 0..CASES {
        let (a, b) = (safe_f64(&mut rng), safe_f64(&mut rng));
        let sw = (Sf64::from(a) * Sf64::from(b)).to_bits();
        let host = (a * b).to_bits();
        assert_eq!(sw, host, "{a} * {b}");
    }
}

#[test]
fn add32_matches_host() {
    let mut rng = Rng::new(0xf9a0_0004);
    for _ in 0..CASES {
        let (a, b) = (safe_f32(&mut rng), safe_f32(&mut rng));
        let sw = (Sf32::from(a) + Sf32::from(b)).to_bits();
        let host = (a + b).to_bits();
        assert_eq!(sw, host, "{a} + {b}");
    }
}

#[test]
fn mul32_matches_host() {
    let mut rng = Rng::new(0xf9a0_0005);
    for _ in 0..CASES {
        let (a, b) = (safe_f32(&mut rng), safe_f32(&mut rng));
        let sw = (Sf32::from(a) * Sf32::from(b)).to_bits();
        let host = (a * b).to_bits();
        assert_eq!(sw, host, "{a} * {b}");
    }
}

/// Arbitrary bit patterns (including NaNs, infs, subnormals): the software
/// result must equal FTZ(host(FTZ(a), FTZ(b))) whenever that reference is
/// well-defined (we skip cases where the host result is subnormal-rounded
/// at the normal boundary, where FTZ and gradual underflow legitimately
/// disagree), and NaNs must map to NaNs.
#[test]
fn add64_arbitrary_bits() {
    let mut rng = Rng::new(0xf9a0_0006);
    for _ in 0..CASES {
        let (abits, bbits) = (rng.next_u64(), rng.next_u64());
        let (a, b) = (f64::from_bits(abits), f64::from_bits(bbits));
        let sw = f64::from_bits((Sf64::from(a) + Sf64::from(b)).to_bits());
        let host = ftz64(ftz64(a) + ftz64(b));
        if host.is_nan() {
            assert!(sw.is_nan());
        } else if host == 0.0 || host.abs() >= f64::MIN_POSITIVE * 2.0 {
            // Away from the FTZ boundary the reference is exact...
            if ftz64(a) + ftz64(b) == host {
                // ...but only when the host itself did not round a subnormal.
                assert_eq!(sw.to_bits(), host.to_bits(), "{a} + {b}");
            }
        }
    }
}

#[test]
fn mul64_arbitrary_bits() {
    let mut rng = Rng::new(0xf9a0_0007);
    for _ in 0..CASES {
        let (abits, bbits) = (rng.next_u64(), rng.next_u64());
        let (a, b) = (f64::from_bits(abits), f64::from_bits(bbits));
        let sw = f64::from_bits((Sf64::from(a) * Sf64::from(b)).to_bits());
        let host = ftz64(ftz64(a) * ftz64(b));
        if host.is_nan() {
            assert!(sw.is_nan());
        } else if (host == 0.0 || host.abs() >= f64::MIN_POSITIVE * 2.0)
            && ftz64(a) * ftz64(b) == host
        {
            assert_eq!(sw.to_bits(), host.to_bits(), "{a} * {b}");
        }
    }
}

#[test]
fn mul32_arbitrary_bits() {
    let mut rng = Rng::new(0xf9a0_0008);
    for _ in 0..CASES {
        let (abits, bbits) = (rng.next_u32(), rng.next_u32());
        let (a, b) = (f32::from_bits(abits), f32::from_bits(bbits));
        let sw = f32::from_bits((Sf32::from(a) * Sf32::from(b)).to_bits());
        let host = ftz32(ftz32(a) * ftz32(b));
        if host.is_nan() {
            assert!(sw.is_nan());
        } else if (host == 0.0 || host.abs() >= f32::MIN_POSITIVE * 2.0)
            && ftz32(a) * ftz32(b) == host
        {
            assert_eq!(sw.to_bits(), host.to_bits(), "{a} * {b}");
        }
    }
}

#[test]
fn compare_matches_host_partial_cmp() {
    let mut rng = Rng::new(0xf9a0_0009);
    for _ in 0..CASES {
        let (a, b) = (
            f64::from_bits(rng.next_u64()),
            f64::from_bits(rng.next_u64()),
        );
        // FTZ first: −min_subnormal and +min_subnormal compare equal here.
        let (fa, fb) = (ftz64(a), ftz64(b));
        let sw = Sf64::from(a).compare(Sf64::from(b));
        assert_eq!(sw, fa.partial_cmp(&fb), "{a} vs {b}");
    }
}

#[test]
fn addition_commutes() {
    let mut rng = Rng::new(0xf9a0_000a);
    for _ in 0..CASES {
        let (a, b) = (safe_f64(&mut rng), safe_f64(&mut rng));
        let ab = Sf64::from(a) + Sf64::from(b);
        let ba = Sf64::from(b) + Sf64::from(a);
        assert_eq!(ab.to_bits(), ba.to_bits());
    }
}

#[test]
fn multiplication_commutes() {
    let mut rng = Rng::new(0xf9a0_000b);
    for _ in 0..CASES {
        let (a, b) = (safe_f64(&mut rng), safe_f64(&mut rng));
        let ab = Sf64::from(a) * Sf64::from(b);
        let ba = Sf64::from(b) * Sf64::from(a);
        assert_eq!(ab.to_bits(), ba.to_bits());
    }
}

#[test]
fn negation_is_exact() {
    let mut rng = Rng::new(0xf9a0_000c);
    for _ in 0..CASES {
        let (a, b) = (safe_f64(&mut rng), safe_f64(&mut rng));
        // a − b == −(b − a) in RNE (sign-symmetric rounding).
        let x = Sf64::from(a) - Sf64::from(b);
        let y = -(Sf64::from(b) - Sf64::from(a));
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn narrow_matches_host() {
    let mut rng = Rng::new(0xf9a0_000d);
    for _ in 0..CASES {
        let a = safe_f64(&mut rng);
        let sw = Sf64::from(a).to_sf32().to_bits();
        let host = ftz32(a as f32).to_bits();
        assert_eq!(sw, host, "{a}");
    }
}

#[test]
fn widen_matches_host() {
    let mut rng = Rng::new(0xf9a0_000e);
    for _ in 0..CASES {
        let a = safe_f32(&mut rng);
        let sw = Sf32::from(a).to_sf64().to_bits();
        let host = (a as f64).to_bits();
        assert_eq!(sw, host, "{a}");
    }
}

#[test]
fn int_roundtrip() {
    let mut rng = Rng::new(0xf9a0_000f);
    for _ in 0..CASES {
        let v = rng.next_u64() as i64;
        let f = Sf64::from_i64(v);
        assert_eq!(f.to_host().to_bits(), (v as f64).to_bits());
        // Values representable exactly round-trip.
        if v.abs() < (1 << 53) {
            assert_eq!(f.to_i64(), v);
        }
    }
}

#[test]
fn truncation_matches_host() {
    let mut rng = Rng::new(0xf9a0_0010);
    for _ in 0..CASES {
        let a = safe_f64(&mut rng);
        let clamped = a.clamp(-1e18, 1e18);
        assert_eq!(Sf64::from(clamped).to_i64(), clamped.trunc() as i64);
    }
}

#[test]
fn recip_within_1ulp() {
    let mut rng = Rng::new(0xf9a0_0011);
    for _ in 0..CASES {
        let a = safe_f64(&mut rng);
        let r = softdiv::recip(Sf64::from(a)).to_host();
        let want = 1.0 / a;
        if want.is_finite() && want.abs() >= f64::MIN_POSITIVE {
            let ud = (r.to_bits() as i64 - want.to_bits() as i64).unsigned_abs();
            assert!(ud <= 1, "recip({a}) = {r}, want {want} ({ud} ulp)");
        }
    }
}

#[test]
fn div_within_1ulp() {
    let mut rng = Rng::new(0xf9a0_0012);
    for _ in 0..CASES {
        let (a, b) = (safe_f64(&mut rng), safe_f64(&mut rng));
        let q = softdiv::div(Sf64::from(a), Sf64::from(b)).to_host();
        let want = a / b;
        if want.is_finite() && want.abs() >= f64::MIN_POSITIVE {
            let ud = (q.to_bits() as i64 - want.to_bits() as i64).unsigned_abs();
            assert!(ud <= 1, "{a}/{b} = {q}, want {want} ({ud} ulp)");
        }
    }
}

#[test]
fn sqrt_within_2ulp() {
    let mut rng = Rng::new(0xf9a0_0013);
    for _ in 0..CASES {
        let x = safe_f64(&mut rng).abs();
        let s = softdiv::sqrt(Sf64::from(x)).to_host();
        let want = x.sqrt();
        let ud = (s.to_bits() as i64 - want.to_bits() as i64).unsigned_abs();
        assert!(ud <= 2, "sqrt({x}) = {s}, want {want} ({ud} ulp)");
    }
}

#[test]
fn raw_add_never_panics() {
    let mut rng = Rng::new(0xf9a0_0014);
    for _ in 0..CASES {
        let (abits, bbits) = (rng.next_u64(), rng.next_u64());
        let _ = soft::add::<B64>(abits, bbits);
        let _ = soft::mul::<B64>(abits, bbits);
        let _ = soft::add::<B32>(abits & 0xffff_ffff, bbits & 0xffff_ffff);
        let _ = soft::mul::<B32>(abits & 0xffff_ffff, bbits & 0xffff_ffff);
    }
}
