//! Division, reciprocal and square root as software routines.
//!
//! The T Series node has **no floating-point divider**: the arithmetic
//! hardware is an adder and a multiplier (§II *Arithmetic*). Machines of
//! this class compute quotients by Newton–Raphson iteration on a reciprocal
//! seed, using only multiplies and adds — exactly what this module does, so
//! that the simulated kernels (LU pivoting, Jacobi sweeps) pay a realistic
//! multi-operation cost for every divide.
//!
//! * [`recip`] — 1/x via Newton–Raphson: `y ← y·(2 − x·y)`, quadratic
//!   convergence from an exponent-flip seed; 5 iterations reach binary64
//!   round-off.
//! * [`div`] — `a/b = a · recip(b)` with a final correction step
//!   `q ← q + r·recip(b)` where `r = a − q·b`, which brings the result to
//!   within 1 ulp of the correctly rounded quotient.
//! * [`sqrt`] — via reciprocal square root `y ← y·(3 − x·y²)/2`.
//! * [`RECIP_FLOPS`], [`DIV_FLOPS`], [`SQRT_FLOPS`] — operation counts used
//!   by the timing model (a divide is ~13 hardware operations, which is why
//!   vectorized division runs far below 8 MFLOPS on this machine).

use crate::soft::{Format, Sf64, B64};

/// Hardware add/mul operations consumed by one [`recip`].
pub const RECIP_FLOPS: u64 = 17; // 2-op seed + 5 iterations × 3 ops

/// Hardware add/mul operations consumed by one [`div`].
pub const DIV_FLOPS: u64 = RECIP_FLOPS + 4; // q = a·y, r = a − q·b, q += r·y

/// Hardware add/mul operations consumed by one [`sqrt`].
pub const SQRT_FLOPS: u64 = 9 * 4 + 2 + RECIP_FLOPS + 3; // rsqrt sweeps + s=x·y + Heron

/// Reciprocal seed: write `x = 2^(e+1) · d` with `d ∈ [0.5, 1)` and use the
/// classic Newton division seed `1/d ≈ 48/17 − 32/17·d` (≥ 4.54 correct
/// bits), then scale the exponent back. Computed entirely with the software
/// arithmetic, as the machine's run-time library would.
fn recip_seed(x: Sf64) -> Sf64 {
    let bits = x.to_bits();
    let sign = bits & (1 << 63);
    let exp = (bits >> 52) & 0x7ff;
    debug_assert!(exp != 0 && exp != 0x7ff, "caller handles specials");
    let d_bits = (1022u64 << 52) | (bits & ((1 << 52) - 1)); // d = m/2 ∈ [0.5,1)
    let d = Sf64::from_bits(d_bits);
    let c1 = Sf64::from(48.0 / 17.0);
    let c2 = Sf64::from(32.0 / 17.0);
    let approx = c1 - c2 * d; // ≈ 1/d ∈ (1, 2]
                              // Scale by 2^-(e+1).
    let e_unb = exp as i64 - 1023;
    let a_bits = approx.to_bits();
    let a_exp = ((a_bits >> 52) & 0x7ff) as i64;
    let new_exp = a_exp - e_unb - 1;
    debug_assert!(
        (1..=0x7fe).contains(&new_exp),
        "recip_seed exponent out of range (caller screens e >= 1022)"
    );
    Sf64::from_bits(sign | ((new_exp as u64) << 52) | (a_bits & ((1 << 52) - 1)))
}

/// Software reciprocal `1/x` using only the node's add and multiply.
///
/// Exact zeros give ±inf; infinities give ±0; NaN propagates. Accuracy for
/// normal finite `x`: within 1 ulp of the correctly rounded reciprocal
/// (property-tested against the host).
pub fn recip(x: Sf64) -> Sf64 {
    let bits = x.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    let frac = bits & ((1 << 52) - 1);
    let sign = bits & (1 << 63);
    if exp == 0x7ff {
        return if frac != 0 { x } else { Sf64::from_bits(sign) }; // NaN | ±inf → ±0
    }
    if exp == 0 {
        // Zero or subnormal (which the hardware flushes): 1/0 → ±inf.
        return Sf64::from_bits(sign | (0x7ffu64 << 52));
    }
    let e_unb = exp as i64 - 1023;
    if e_unb >= 1022 {
        // 1/x is at or below the smallest normal. Exactly 2^1022 reciprocates
        // to the smallest normal; everything else flushes to zero.
        return if e_unb == 1022 && frac == 0 {
            Sf64::from_bits(sign | (1u64 << 52))
        } else {
            Sf64::from_bits(sign)
        };
    }
    let two = Sf64::from(2.0);
    let mut y = recip_seed(x);
    for _ in 0..5 {
        // y ← y·(2 − x·y); quadratic convergence.
        y = y * (two - x * y);
    }
    y
}

/// Software division `a / b` (multiply by reciprocal plus one residual
/// correction step).
pub fn div(a: Sf64, b: Sf64) -> Sf64 {
    let y = recip(b);
    let q = a * y;
    // The residual correction is only meaningful for finite nonzero results;
    // for 0, ±inf and NaN quotients it would manufacture NaNs (inf·0 terms).
    let q_exp = (q.to_bits() >> 52) & 0x7ff;
    if q_exp == 0 || q_exp == 0x7ff {
        return q;
    }
    // One correction: q' = q + (a − q·b)·y. Brings error to ≤1 ulp.
    let r = a - q * b;
    q + r * y
}

/// Software square root via Newton on the reciprocal square root.
/// Negative input → NaN; ±0 → ±0; +inf → +inf.
pub fn sqrt(x: Sf64) -> Sf64 {
    let bits = x.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    if bits >> 63 == 1 {
        return if exp == 0 {
            x // −0 (subnormals flush) → −0
        } else {
            Sf64::from_bits(B64::QNAN)
        };
    }
    if exp == 0x7ff {
        return x; // +inf or NaN
    }
    if exp == 0 {
        return Sf64::ZERO;
    }
    // Seed for 1/sqrt(x): with x = m·4^k (m ∈ [1,4)), take y₀ = c·2^(−k).
    // Newton on the reciprocal square root diverges to the negative root if
    // x·y₀² ≥ 3, so pick c = 1 for even exponents (x·y₀² = m < 2) and
    // c = 3/4 for odd ones (x·y₀² = 1.125·m' < 2.25 for m' ∈ [1,2)).
    let e_unb = exp as i64 - 1023;
    let k = e_unb >> 1; // arithmetic shift: floor(e/2)
    let seed_exp = (1023 - k) as u64;
    let mut y = Sf64::from_bits(seed_exp << 52);
    if e_unb & 1 == 1 {
        y = y * Sf64::from(0.75);
    }
    let half = Sf64::from(0.5);
    let three = Sf64::from(3.0);
    // The exponent-only seed can be ~50% off, so convergence is linear for
    // the first few sweeps before turning quadratic; nine sweeps reach
    // binary64 round-off from the worst-case seed.
    for _ in 0..9 {
        // y ← y·(3 − x·y²)/2
        y = y * half * (three - x * y * y);
    }
    let s = x * y; // sqrt(x) = x / sqrt(x)
                   // One Heron correction with software divide-free step:
                   // s' = (s + x·recip(s)) / 2 — use recip (mul/add only).
    (s + x * recip(s)) * half
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp_diff(a: f64, b: f64) -> u64 {
        let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
        (ia - ib).unsigned_abs()
    }

    #[test]
    fn recip_accuracy() {
        for v in [
            1.0, 2.0, 3.0, 0.1, 17.0, 1e10, 1e-10, -5.0, 123456.789, 0.9999999,
        ] {
            let r = recip(Sf64::from(v)).to_host();
            assert!(
                ulp_diff(r, 1.0 / v) <= 1,
                "recip({v}) = {r}, want {}",
                1.0 / v
            );
        }
    }

    #[test]
    fn recip_specials() {
        assert_eq!(recip(Sf64::from(0.0)).to_host(), f64::INFINITY);
        assert_eq!(recip(Sf64::from(-0.0)).to_host(), f64::NEG_INFINITY);
        assert_eq!(recip(Sf64::from(f64::INFINITY)).to_host(), 0.0);
        assert!(recip(Sf64::from(f64::NAN)).is_nan());
    }

    #[test]
    fn div_accuracy() {
        for (a, b) in [
            (1.0, 3.0),
            (22.0, 7.0),
            (-1e5, 17.0),
            (0.1, 0.3),
            (1e200, 1e-100),
        ] {
            let q = div(Sf64::from(a), Sf64::from(b)).to_host();
            assert!(ulp_diff(q, a / b) <= 1, "{a}/{b} = {q}, want {}", a / b);
        }
        assert_eq!(
            div(Sf64::from(5.0), Sf64::from(0.0)).to_host(),
            f64::INFINITY
        );
    }

    #[test]
    fn sqrt_accuracy() {
        for v in [1.0, 2.0, 4.0, 9.0, 0.25, 1e10, 3.7, 1e-8, 6.25e4] {
            let s = sqrt(Sf64::from(v)).to_host();
            assert!(
                ulp_diff(s, v.sqrt()) <= 2,
                "sqrt({v}) = {s}, want {}",
                v.sqrt()
            );
        }
        assert!(sqrt(Sf64::from(-1.0)).is_nan());
        assert_eq!(sqrt(Sf64::from(0.0)).to_host(), 0.0);
        assert_eq!(sqrt(Sf64::from(f64::INFINITY)).to_host(), f64::INFINITY);
    }

    #[test]
    fn flop_budgets_are_consistent() {
        const { assert!(DIV_FLOPS > RECIP_FLOPS) };
        // The point the paper's design makes implicitly: a divide costs an
        // order of magnitude more than an add or multiply on this machine.
        const { assert!(DIV_FLOPS >= 10) };
    }
}
