//! Bit-level IEEE-754 binary32/binary64 arithmetic with flush-to-zero.
//!
//! The implementation is a single generic core over a compile-time
//! [`Format`]; all arithmetic is done in `u64`/`u128` integer registers the
//! way the hardware's normalize/round datapath would, with guard, round and
//! sticky bits and round-to-nearest-even.
//!
//! ## Flush-to-zero semantics (the paper's "no gradual underflow")
//!
//! * **Inputs**: a subnormal operand is treated as a zero of the same sign
//!   (DAZ — denormals are zero).
//! * **Results**: rounding is performed as if the exponent range were
//!   unbounded; if the rounded magnitude is below the smallest normal number
//!   the result is replaced by a zero of the same sign (FTZ).
//!
//! Everything else follows IEEE-754: NaN propagation (quiet), signed zeros
//! and infinities, `(+0) + (−0) = +0`, exact cancellation gives `+0` in
//! round-to-nearest.

use std::cmp::Ordering;

/// Compile-time description of a binary interchange format.
pub trait Format: Copy + Default {
    /// Exponent field width in bits (8 for binary32, 11 for binary64).
    const EXP_BITS: u32;
    /// Fraction (explicit mantissa) field width (23 / 52).
    const MANT_BITS: u32;

    /// Total encoding width.
    const TOTAL_BITS: u32 = 1 + Self::EXP_BITS + Self::MANT_BITS;
    /// Exponent bias.
    const BIAS: i32 = (1 << (Self::EXP_BITS - 1)) - 1;
    /// All-ones exponent field (infinities and NaNs).
    const EXP_MAX: u64 = (1 << Self::EXP_BITS) - 1;
    /// Fraction mask.
    const MANT_MASK: u64 = (1 << Self::MANT_BITS) - 1;
    /// Implicit (hidden) leading bit.
    const HIDDEN: u64 = 1 << Self::MANT_BITS;
    /// Sign bit position.
    const SIGN_BIT: u64 = 1 << (Self::TOTAL_BITS - 1);
    /// Canonical quiet NaN.
    const QNAN: u64 = (Self::EXP_MAX << Self::MANT_BITS) | (1 << (Self::MANT_BITS - 1));
}

/// The binary64 format (the T Series' 64-bit mode: 53-bit significand,
/// 11-bit exponent — "approximately 15 decimal digits" and "roughly 10^-308
/// to 10^308", as the paper puts it).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct B64;

impl Format for B64 {
    const EXP_BITS: u32 = 11;
    const MANT_BITS: u32 = 52;
}

/// The binary32 format (32-bit mode).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct B32;

impl Format for B32 {
    const EXP_BITS: u32 = 8;
    const MANT_BITS: u32 = 23;
}

/// A classified, unpacked operand. Subnormals never appear: `unpack`
/// flushes them to [`Class::Zero`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Nan,
    Inf {
        sign: bool,
    },
    Zero {
        sign: bool,
    },
    /// `mant` has the hidden bit set: `HIDDEN <= mant < 2*HIDDEN`.
    /// `exp` is unbiased.
    Norm {
        sign: bool,
        exp: i32,
        mant: u64,
    },
}

#[inline]
fn sign_of<F: Format>(bits: u64) -> bool {
    bits & F::SIGN_BIT != 0
}

#[inline]
fn exp_of<F: Format>(bits: u64) -> u64 {
    (bits >> F::MANT_BITS) & F::EXP_MAX
}

#[inline]
fn mant_of<F: Format>(bits: u64) -> u64 {
    bits & F::MANT_MASK
}

#[inline]
fn unpack<F: Format>(bits: u64) -> Class {
    let sign = sign_of::<F>(bits);
    let e = exp_of::<F>(bits);
    let m = mant_of::<F>(bits);
    if e == F::EXP_MAX {
        if m == 0 {
            Class::Inf { sign }
        } else {
            Class::Nan
        }
    } else if e == 0 {
        // Zero or subnormal: both flush to zero (DAZ).
        Class::Zero { sign }
    } else {
        Class::Norm {
            sign,
            exp: e as i32 - F::BIAS,
            mant: m | F::HIDDEN,
        }
    }
}

#[inline]
fn pack_zero<F: Format>(sign: bool) -> u64 {
    if sign {
        F::SIGN_BIT
    } else {
        0
    }
}

#[inline]
fn pack_inf<F: Format>(sign: bool) -> u64 {
    pack_zero::<F>(sign) | (F::EXP_MAX << F::MANT_BITS)
}

/// Pack a rounded normal. `exp` unbiased, `mant` with hidden bit set.
/// Applies overflow (→ inf) and flush-to-zero underflow (→ 0).
#[inline]
fn pack_norm<F: Format>(sign: bool, exp: i32, mant: u64) -> u64 {
    debug_assert!(mant >= F::HIDDEN && mant < F::HIDDEN << 1);
    let biased = exp + F::BIAS;
    if biased >= F::EXP_MAX as i32 {
        pack_inf::<F>(sign)
    } else if biased <= 0 {
        pack_zero::<F>(sign) // FTZ: no gradual underflow
    } else {
        pack_zero::<F>(sign) | ((biased as u64) << F::MANT_BITS) | (mant & F::MANT_MASK)
    }
}

/// Round-to-nearest-even of a `(mant << 3) | grs` quantity. Returns the
/// rounded mantissa (hidden bit still set; may carry) and the exponent
/// increment caused by a rounding carry.
#[inline]
fn round_rne<F: Format>(mant_grs: u64) -> (u64, i32) {
    let grs = mant_grs & 0x7;
    let mut mant = mant_grs >> 3;
    // Round up on >half, or exactly half with odd LSB.
    if grs > 4 || (grs == 4 && (mant & 1) == 1) {
        mant += 1;
        if mant == F::HIDDEN << 1 {
            return (F::HIDDEN, 1);
        }
    }
    (mant, 0)
}

/// Shift right collecting a sticky bit into bit 0.
#[inline]
fn shr_sticky(v: u64, by: u32) -> u64 {
    if by == 0 {
        v
    } else if by >= 64 {
        u64::from(v != 0)
    } else {
        let lost = v & ((1u64 << by) - 1);
        (v >> by) | u64::from(lost != 0)
    }
}

/// Software addition: `a + b` in format `F`.
pub fn add<F: Format>(a: u64, b: u64) -> u64 {
    use Class::*;
    match (unpack::<F>(a), unpack::<F>(b)) {
        (Nan, _) | (_, Nan) => F::QNAN,
        (Inf { sign: sa }, Inf { sign: sb }) => {
            if sa == sb {
                pack_inf::<F>(sa)
            } else {
                F::QNAN // ∞ − ∞
            }
        }
        (Inf { sign }, _) | (_, Inf { sign }) => pack_inf::<F>(sign),
        (Zero { sign: sa }, Zero { sign: sb }) => pack_zero::<F>(sa && sb), // +0 unless both −0
        (Zero { .. }, n @ Norm { .. }) => pack_class::<F>(n),
        (n @ Norm { .. }, Zero { .. }) => pack_class::<F>(n),
        (
            Norm {
                sign: sa,
                exp: ea,
                mant: ma,
            },
            Norm {
                sign: sb,
                exp: eb,
                mant: mb,
            },
        ) => add_norm::<F>(sa, ea, ma, sb, eb, mb),
    }
}

#[inline]
fn pack_class<F: Format>(c: Class) -> u64 {
    match c {
        Class::Nan => F::QNAN,
        Class::Inf { sign } => pack_inf::<F>(sign),
        Class::Zero { sign } => pack_zero::<F>(sign),
        Class::Norm { sign, exp, mant } => pack_norm::<F>(sign, exp, mant),
    }
}

fn add_norm<F: Format>(sa: bool, ea: i32, ma: u64, sb: bool, eb: i32, mb: u64) -> u64 {
    // Order so that (e1,m1) has the larger magnitude.
    let (s1, e1, m1, s2, e2, m2) = if (ea, ma) >= (eb, mb) {
        (sa, ea, ma, sb, eb, mb)
    } else {
        (sb, eb, mb, sa, ea, ma)
    };
    // Work with 3 extra bits (guard, round, sticky).
    let big = m1 << 3;
    let small = shr_sticky(m2 << 3, (e1 - e2) as u32);
    if s1 == s2 {
        // Magnitude addition; may carry one bit.
        let mut sum = big + small;
        let mut exp = e1;
        if sum >= (F::HIDDEN << 4) {
            sum = shr_sticky(sum, 1);
            exp += 1;
        }
        let (mant, bump) = round_rne::<F>(sum);
        pack_norm::<F>(s1, exp + bump, mant)
    } else {
        // Magnitude subtraction: big >= small by construction.
        let mut diff = big - small;
        if diff == 0 {
            return pack_zero::<F>(false); // exact cancellation → +0 (RNE)
        }
        let mut exp = e1;
        // Normalize left until the hidden bit (at position MANT_BITS+3) is set.
        let target = F::HIDDEN << 3;
        while diff < target {
            diff <<= 1;
            exp -= 1;
        }
        let (mant, bump) = round_rne::<F>(diff);
        pack_norm::<F>(s1, exp + bump, mant)
    }
}

/// Software subtraction: `a - b`.
pub fn sub<F: Format>(a: u64, b: u64) -> u64 {
    add::<F>(a, neg::<F>(b))
}

/// Software multiplication: `a * b`.
pub fn mul<F: Format>(a: u64, b: u64) -> u64 {
    use Class::*;
    match (unpack::<F>(a), unpack::<F>(b)) {
        (Nan, _) | (_, Nan) => F::QNAN,
        (Inf { sign: sa }, Inf { sign: sb }) => pack_inf::<F>(sa ^ sb),
        (Inf { .. }, Zero { .. }) | (Zero { .. }, Inf { .. }) => F::QNAN, // ∞ × 0
        (Inf { sign: sa }, Norm { sign: sb, .. }) | (Norm { sign: sa, .. }, Inf { sign: sb }) => {
            pack_inf::<F>(sa ^ sb)
        }
        (Zero { sign: sa }, Zero { sign: sb })
        | (Zero { sign: sa }, Norm { sign: sb, .. })
        | (Norm { sign: sa, .. }, Zero { sign: sb }) => pack_zero::<F>(sa ^ sb),
        (
            Norm {
                sign: sa,
                exp: ea,
                mant: ma,
            },
            Norm {
                sign: sb,
                exp: eb,
                mant: mb,
            },
        ) => {
            let sign = sa ^ sb;
            // Product of two (MANT_BITS+1)-bit significands: at most
            // 2*(MANT_BITS+1) bits — 106 for binary64 — computed in u128.
            let prod = (ma as u128) * (mb as u128);
            let prod_bits = 2 * (F::MANT_BITS + 1);
            let mut exp = ea + eb;
            // prod is in [2^(prod_bits-2), 2^prod_bits).
            let top_set = prod >> (prod_bits - 1) != 0;
            if top_set {
                exp += 1;
            }
            // Extract MANT_BITS+1 significand bits plus GRS, sticky the rest.
            // Keep mant at position so that hidden bit lands at MANT_BITS+3.
            let keep = F::MANT_BITS + 4; // significand + grs
            let shift = if top_set {
                prod_bits - keep
            } else {
                prod_bits - 1 - keep
            };
            let lost = prod & ((1u128 << shift) - 1);
            let mut mant_grs = (prod >> shift) as u64;
            if lost != 0 {
                mant_grs |= 1;
            }
            let (mant, bump) = round_rne::<F>(mant_grs);
            pack_norm::<F>(sign, exp + bump, mant)
        }
    }
}

/// Sign flip (exact, applies to NaN/Inf/zero too, as hardware negate does).
#[inline]
pub fn neg<F: Format>(a: u64) -> u64 {
    a ^ F::SIGN_BIT
}

/// Magnitude (clear the sign bit).
#[inline]
pub fn abs<F: Format>(a: u64) -> u64 {
    a & !F::SIGN_BIT
}

/// IEEE comparison. `None` when unordered (either operand NaN);
/// `-0 == +0`.
pub fn cmp<F: Format>(a: u64, b: u64) -> Option<Ordering> {
    use Class::*;
    let (ca, cb) = (unpack::<F>(a), unpack::<F>(b));
    if matches!(ca, Nan) || matches!(cb, Nan) {
        return None;
    }
    let key = |c: Class| -> (i8, i128) {
        match c {
            Nan => unreachable!(),
            Inf { sign } => (if sign { -2 } else { 2 }, 0),
            Zero { .. } => (0, 0),
            Norm { sign, exp, mant } => {
                let mag = ((exp as i128 + 4096) << (F::MANT_BITS + 1)) | mant as i128;
                (if sign { -1 } else { 1 }, if sign { -mag } else { mag })
            }
        }
    };
    Some(key(ca).cmp(&key(cb)))
}

/// Convert a signed 64-bit integer to format `F` with round-to-nearest-even.
pub fn from_i64<F: Format>(v: i64) -> u64 {
    if v == 0 {
        return 0;
    }
    let sign = v < 0;
    let mag = v.unsigned_abs();
    let top = 63 - mag.leading_zeros(); // position of the MSB
    let exp = top as i32;
    // Place MSB at the hidden-bit position, with GRS below.
    let mant_grs = if top <= F::MANT_BITS + 3 {
        mag << (F::MANT_BITS + 3 - top)
    } else {
        shr_sticky(mag, top - (F::MANT_BITS + 3))
    };
    let (mant, bump) = round_rne::<F>(mant_grs);
    pack_norm::<F>(sign, exp + bump, mant)
}

/// Convert format `F` to i64 with truncation toward zero.
/// NaN → 0; saturates at the i64 range (like hardware convert-with-flag).
pub fn to_i64<F: Format>(a: u64) -> i64 {
    match unpack::<F>(a) {
        Class::Nan => 0,
        Class::Inf { sign } => {
            if sign {
                i64::MIN
            } else {
                i64::MAX
            }
        }
        Class::Zero { .. } => 0,
        Class::Norm { sign, exp, mant } => {
            if exp < 0 {
                return 0;
            }
            if exp >= 63 {
                return if sign { i64::MIN } else { i64::MAX };
            }
            let shift = exp - F::MANT_BITS as i32;
            let mag = if shift >= 0 {
                if shift > 63 - (F::MANT_BITS as i32 + 1) {
                    return if sign { i64::MIN } else { i64::MAX };
                }
                (mant as i64) << shift
            } else {
                (mant >> (-shift) as u32) as i64
            };
            if sign {
                -mag
            } else {
                mag
            }
        }
    }
}

/// Widen binary32 → binary64 (exact; subnormal inputs flush).
pub fn f32_to_f64(bits32: u64) -> u64 {
    match unpack::<B32>(bits32) {
        Class::Nan => B64::QNAN,
        Class::Inf { sign } => pack_inf::<B64>(sign),
        Class::Zero { sign } => pack_zero::<B64>(sign),
        Class::Norm { sign, exp, mant } => {
            let mant64 = (mant & B32::MANT_MASK) << (B64::MANT_BITS - B32::MANT_BITS);
            pack_norm::<B64>(sign, exp, mant64 | B64::HIDDEN)
        }
    }
}

/// Narrow binary64 → binary32 with round-to-nearest-even and FTZ.
pub fn f64_to_f32(bits64: u64) -> u64 {
    match unpack::<B64>(bits64) {
        Class::Nan => B32::QNAN,
        Class::Inf { sign } => pack_inf::<B32>(sign),
        Class::Zero { sign } => pack_zero::<B32>(sign),
        Class::Norm { sign, exp, mant } => {
            // 53-bit significand → 24-bit + GRS.
            let drop = B64::MANT_BITS - B32::MANT_BITS; // 29
            let kept = mant >> (drop - 3);
            let lost = mant & ((1 << (drop - 3)) - 1);
            let mant_grs = kept | u64::from(lost != 0);
            let (m, bump) = round_rne::<B32>(mant_grs);
            pack_norm::<B32>(sign, exp + bump, m)
        }
    }
}

// ---------------------------------------------------------------------------
// Ergonomic wrappers
// ---------------------------------------------------------------------------

macro_rules! wrapper {
    ($name:ident, $fmt:ty, $host:ty, $bits:ty, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name(pub $bits);

        impl $name {
            /// Positive zero.
            pub const ZERO: $name = $name(0);

            /// Wrap raw bits.
            #[inline]
            pub const fn from_bits(b: $bits) -> Self {
                $name(b)
            }

            /// Raw bits.
            #[inline]
            pub const fn to_bits(self) -> $bits {
                self.0
            }

            /// Convert from the host float (bit copy; subnormals will be
            /// flushed on first use).
            #[inline]
            pub fn from_host(v: $host) -> Self {
                $name(v.to_bits())
            }

            /// Convert to the host float (bit copy).
            #[inline]
            pub fn to_host(self) -> $host {
                <$host>::from_bits(self.0)
            }

            /// True for NaN payloads.
            #[inline]
            pub fn is_nan(self) -> bool {
                matches!(unpack::<$fmt>(self.0 as u64), Class::Nan)
            }

            /// IEEE comparison (`None` when unordered).
            #[inline]
            pub fn compare(self, o: Self) -> Option<Ordering> {
                cmp::<$fmt>(self.0 as u64, o.0 as u64)
            }

            /// Magnitude.
            #[inline]
            pub fn abs(self) -> Self {
                $name(abs::<$fmt>(self.0 as u64) as $bits)
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, o: $name) -> $name {
                $name(add::<$fmt>(self.0 as u64, o.0 as u64) as $bits)
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, o: $name) -> $name {
                $name(sub::<$fmt>(self.0 as u64, o.0 as u64) as $bits)
            }
        }

        impl std::ops::Mul for $name {
            type Output = $name;
            #[inline]
            fn mul(self, o: $name) -> $name {
                $name(mul::<$fmt>(self.0 as u64, o.0 as u64) as $bits)
            }
        }

        impl std::ops::Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(neg::<$fmt>(self.0 as u64) as $bits)
            }
        }

        impl From<$host> for $name {
            #[inline]
            fn from(v: $host) -> $name {
                $name::from_host(v)
            }
        }

        impl From<$name> for $host {
            #[inline]
            fn from(v: $name) -> $host {
                v.to_host()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.to_host())
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.to_host())
            }
        }
    };
}

wrapper!(
    Sf64,
    B64,
    f64,
    u64,
    "A 64-bit T Series float: IEEE binary64 with flush-to-zero arithmetic."
);
wrapper!(
    Sf32,
    B32,
    f32,
    u32,
    "A 32-bit T Series float: IEEE binary32 with flush-to-zero arithmetic."
);

impl Sf64 {
    /// Narrow to 32-bit mode (RNE, FTZ).
    pub fn to_sf32(self) -> Sf32 {
        Sf32(f64_to_f32(self.0) as u32)
    }

    /// Convert an integer (RNE).
    pub fn from_i64(v: i64) -> Sf64 {
        Sf64(from_i64::<B64>(v))
    }

    /// Truncate toward zero.
    pub fn to_i64(self) -> i64 {
        to_i64::<B64>(self.0)
    }
}

impl Sf32 {
    /// Widen to 64-bit mode (exact).
    pub fn to_sf64(self) -> Sf64 {
        Sf64(f32_to_f64(self.0 as u64))
    }

    /// Convert an integer (RNE).
    pub fn from_i64(v: i64) -> Sf32 {
        Sf32(from_i64::<B32>(v) as u32)
    }

    /// Truncate toward zero.
    pub fn to_i64(self) -> i64 {
        to_i64::<B32>(self.0 as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> u64 {
        v.to_bits()
    }

    #[test]
    fn simple_sums() {
        for (a, b) in [
            (1.0, 2.0),
            (0.1, 0.2),
            (1e300, 1e300),
            (-5.5, 5.5),
            (3.25, -1.125),
        ] {
            assert_eq!(add::<B64>(f(a), f(b)), f(a + b), "{a} + {b}");
        }
    }

    #[test]
    fn simple_products() {
        for (a, b) in [
            (1.5f64, 2.0f64),
            (0.1, 0.2),
            (1e-150, 1e-150),
            (-3.0, 7.0),
            (1e308, 10.0),
        ] {
            let want = a * b;
            let want = if want != 0.0 && want.abs() < f64::MIN_POSITIVE {
                0.0
            } else {
                want
            };
            assert_eq!(mul::<B64>(f(a), f(b)), f(want), "{a} * {b}");
        }
    }

    #[test]
    fn cancellation_gives_plus_zero() {
        let r = add::<B64>(f(1.5), f(-1.5));
        assert_eq!(r, f(0.0));
        assert_eq!(add::<B64>(f(-0.0), f(0.0)), f(0.0));
        assert_eq!(add::<B64>(f(-0.0), f(-0.0)), f(-0.0));
    }

    #[test]
    fn nan_propagates() {
        assert!(Sf64::from_host(f64::NAN + 0.0).is_nan());
        assert_eq!(add::<B64>(f(f64::NAN), f(1.0)), B64::QNAN);
        assert_eq!(mul::<B64>(f(f64::INFINITY), f(0.0)), B64::QNAN);
        assert_eq!(
            add::<B64>(f(f64::INFINITY), f(f64::NEG_INFINITY)),
            B64::QNAN
        );
    }

    #[test]
    fn infinities() {
        assert_eq!(add::<B64>(f(f64::INFINITY), f(1e308)), f(f64::INFINITY));
        assert_eq!(mul::<B64>(f(f64::NEG_INFINITY), f(-2.0)), f(f64::INFINITY));
        // Overflow rounds to infinity.
        assert_eq!(mul::<B64>(f(1e308), f(1e308)), f(f64::INFINITY));
        assert_eq!(add::<B64>(f(f64::MAX), f(f64::MAX)), f(f64::INFINITY));
    }

    #[test]
    fn flush_to_zero_inputs() {
        let sub = f64::from_bits(1); // smallest subnormal
                                     // Treated as zero on input.
        assert_eq!(add::<B64>(f(sub), f(1.0)), f(1.0));
        assert_eq!(mul::<B64>(f(sub), f(1e300)), f(0.0));
        let negsub = f64::from_bits(1 | (1 << 63));
        assert_eq!(mul::<B64>(f(negsub), f(1e300)), f(-0.0));
    }

    #[test]
    fn flush_to_zero_results() {
        // 1e-200 * 1e-200 = 1e-400, far below min normal → +0.
        assert_eq!(mul::<B64>(f(1e-200), f(1e-200)), f(0.0));
        assert_eq!(mul::<B64>(f(-1e-200), f(1e-200)), f(-0.0));
        // Host would produce a subnormal here; we produce zero.
        let a = f64::MIN_POSITIVE; // smallest normal
        assert_eq!(mul::<B64>(f(a), f(0.25)), f(0.0));
        // But min-normal itself survives.
        assert_eq!(mul::<B64>(f(a), f(1.0)), f(a));
    }

    #[test]
    fn overflow_boundary_rounding() {
        // The largest finite double plus half its ulp rounds to infinity
        // (RNE at the overflow boundary), but plus slightly less stays put.
        let max = f64::MAX;
        let ulp = 2f64.powi(971);
        assert_eq!(add::<B64>(f(max), f(ulp / 2.0)), f(f64::INFINITY));
        assert_eq!(add::<B64>(f(max), f(ulp / 4.0)), f(max));
        // Symmetric for the negative side.
        assert_eq!(add::<B64>(f(-max), f(-ulp / 2.0)), f(f64::NEG_INFINITY));
    }

    #[test]
    fn min_normal_boundary() {
        let mn = f64::MIN_POSITIVE; // 2^-1022
                                    // Exactly at the boundary: survives.
        assert_eq!(mul::<B64>(f(mn), f(1.0)), f(mn));
        // Halving flushes (result would be subnormal).
        assert_eq!(mul::<B64>(f(mn), f(0.5)), f(0.0));
        // A product that rounds *up to* the boundary from below also
        // flushes in this implementation: rounding happens at full
        // precision first, and anything strictly below 2^-1022 dies.
        let just_above = mn * 1.0000000001;
        assert_eq!(mul::<B64>(f(just_above), f(1.0)), f(just_above));
        // Difference of two nearby normals that lands subnormal: flushes.
        let a = mn * 1.5;
        let b = mn * 1.0;
        assert_eq!(add::<B64>(f(a), f(-b)), f(0.0));
    }

    #[test]
    fn nan_payload_becomes_canonical_qnan() {
        // Any NaN input yields the canonical quiet NaN (hardware style).
        let snan_ish = (0x7ffu64 << 52) | 1;
        assert_eq!(add::<B64>(snan_ish, f(1.0)), B64::QNAN);
        assert_eq!(mul::<B64>(f(2.0), snan_ish), B64::QNAN);
    }

    #[test]
    fn signed_zero_products() {
        assert_eq!(mul::<B64>(f(0.0), f(-5.0)), f(-0.0));
        assert_eq!(mul::<B64>(f(-0.0), f(-5.0)), f(0.0));
        assert_eq!(mul::<B64>(f(-0.0), f(0.0)), f(-0.0));
        // x + (-0) keeps x's identity, including for -0.
        assert_eq!(add::<B64>(f(3.5), f(-0.0)), f(3.5));
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // Sterbenz: a - b is exact when a/2 <= b <= 2a; the bit-level
        // subtract path must honour it.
        for (a, b) in [(1.0000001f64, 1.0), (1e300, 9.999999e299), (3.0, 2.5)] {
            assert_eq!(sub::<B64>(f(a), f(b)), f(a - b), "{a} - {b}");
        }
    }

    #[test]
    fn rne_ties_to_even() {
        // 2^53 + 1 is exactly representable? No: 2^53 is the last exact
        // integer; 2^53 + 1 ties and rounds to even (2^53).
        let two53 = (1u64 << 53) as f64;
        assert_eq!(add::<B64>(f(two53), f(1.0)), f(two53));
        // 2^53 + 2 is representable.
        assert_eq!(add::<B64>(f(two53), f(2.0)), f(two53 + 2.0));
        // 2^53 + 3 ties between +2 and +4 → rounds to +4 (even mantissa).
        assert_eq!(add::<B64>(f(two53), f(3.0)), f(two53 + 4.0));
    }

    #[test]
    fn compare_semantics() {
        assert_eq!(cmp::<B64>(f(1.0), f(2.0)), Some(Ordering::Less));
        assert_eq!(cmp::<B64>(f(-1.0), f(-2.0)), Some(Ordering::Greater));
        assert_eq!(cmp::<B64>(f(0.0), f(-0.0)), Some(Ordering::Equal));
        assert_eq!(cmp::<B64>(f(f64::NAN), f(1.0)), None);
        assert_eq!(
            cmp::<B64>(f(f64::NEG_INFINITY), f(f64::MIN)),
            Some(Ordering::Less)
        );
        assert_eq!(cmp::<B64>(f(-1e-300), f(1e-300)), Some(Ordering::Less));
    }

    #[test]
    fn int_conversions() {
        for v in [
            0i64,
            1,
            -1,
            42,
            -12345,
            1 << 52,
            (1 << 53) + 1,
            i64::MAX,
            i64::MIN + 1,
        ] {
            assert_eq!(from_i64::<B64>(v), f(v as f64), "{v}");
        }
        assert_eq!(to_i64::<B64>(f(3.99)), 3);
        assert_eq!(to_i64::<B64>(f(-3.99)), -3);
        assert_eq!(to_i64::<B64>(f(0.4)), 0);
        assert_eq!(to_i64::<B64>(f(f64::NAN)), 0);
        assert_eq!(to_i64::<B64>(f(1e300)), i64::MAX);
        assert_eq!(to_i64::<B64>(f(-1e300)), i64::MIN);
    }

    #[test]
    fn width_conversions() {
        for v in [0.0f32, 1.5, -2.25, 3.4e38, 1e-37] {
            let wide = f32_to_f64(v.to_bits() as u64);
            assert_eq!(wide, (v as f64).to_bits(), "{v}");
        }
        for v in [0.0f64, 1.5, -2.25, 1e40, 0.1] {
            let narrow = f64_to_f32(v.to_bits()) as u32;
            assert_eq!(narrow, (v as f32).to_bits(), "{v}");
        }
        // f64 value in f32-subnormal range flushes.
        let tiny = 1e-40f64;
        assert_eq!(f64_to_f32(tiny.to_bits()) as u32, 0.0f32.to_bits());
    }

    #[test]
    fn b32_arithmetic() {
        let g = |v: f32| v.to_bits() as u64;
        assert_eq!(add::<B32>(g(1.5), g(2.25)), g(3.75));
        assert_eq!(mul::<B32>(g(3.0), g(-7.0)), g(-21.0));
        assert_eq!(mul::<B32>(g(3e38), g(10.0)), g(f32::INFINITY));
        assert_eq!(mul::<B32>(g(1e-30), g(1e-30)), g(0.0)); // FTZ
    }

    #[test]
    fn wrapper_operators() {
        let a = Sf64::from(2.5);
        let b = Sf64::from(4.0);
        assert_eq!((a + b).to_host(), 6.5);
        assert_eq!((a - b).to_host(), -1.5);
        assert_eq!((a * b).to_host(), 10.0);
        assert_eq!((-a).to_host(), -2.5);
        assert_eq!(a.abs(), a);
        assert_eq!((-a).abs(), a);
        assert_eq!(format!("{a}"), "2.5");
    }
}
