//! # ts-fpu — the T Series floating-point arithmetic, in software
//!
//! The paper (§II *Arithmetic*) specifies the node's arithmetic hardware:
//!
//! * a floating-point **adder** with a six-stage pipeline (add, subtract,
//!   compare, data conversions, 32- and 64-bit),
//! * a floating-point **multiplier**, five-stage in 32-bit mode and
//!   seven-stage in 64-bit mode,
//! * both produce one 32- or 64-bit result every 125 ns — 16 MFLOPS peak,
//! * numbers use "the proposed IEEE Floating-point standard format;
//!   however, **gradual underflow is not supported**".
//!
//! This crate reimplements that arithmetic **bit-accurately in software**:
//!
//! * [`soft`] — a from-scratch IEEE-754 binary32/binary64 implementation
//!   (unpack/align/operate/normalize/round-to-nearest-even/pack) with
//!   **flush-to-zero** semantics: subnormal inputs are treated as zeros and
//!   results that would be subnormal are replaced by a same-signed zero.
//!   This reproduces the T Series' documented deviation from IEEE-754.
//! * [`Sf32`] / [`Sf64`] — ergonomic wrappers with operator overloads.
//! * [`pipeline`] — occupancy/latency models of the two pipelined units and
//!   of *chained* vector forms (multiplier output feeding the adder), in
//!   units of 125 ns machine cycles.
//! * [`softdiv`] — division, reciprocal and square root as Newton–Raphson
//!   software routines built only from the hardware's add and multiply, the
//!   way a machine without a divider actually computes them.
//!
//! There is **no divider** in the node; that is why `softdiv` exists.
//!
//! The crate is dependency-free and panic-free on all inputs.

#![deny(missing_docs)]

pub mod pipeline;
pub mod soft;
pub mod softdiv;

pub use pipeline::{chained_vector_cycles, vector_cycles, Pipeline, Precision, CYCLE_NS};
pub use soft::{Sf32, Sf64};
