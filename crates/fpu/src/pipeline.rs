//! Pipeline occupancy and latency models of the arithmetic units.
//!
//! The paper's numbers (§II *Arithmetic*):
//!
//! * machine cycle **125 ns**;
//! * adder: **6-stage** pipeline in both 32- and 64-bit modes;
//! * multiplier: **5-stage** (32-bit) or **7-stage** (64-bit);
//! * one result per cycle from each unit once the pipeline is full, giving
//!   the 16 MFLOPS peak when both run (8 MFLOPS from a single unit);
//! * vector forms can **chain**: "outputs from the functional units can be
//!   fed directly back as inputs" — a SAXPY streams through multiplier then
//!   adder with depth `mul_stages + add_stages`.
//!
//! Times here are expressed in integer **cycles** so that this crate stays
//! dependency-free; `ts-vec` converts cycles to simulated time.

/// The machine cycle, in nanoseconds (125 ns → 8 MHz result rate per unit).
pub const CYCLE_NS: u64 = 125;

/// Operand width mode. The T Series treats precision as a mode bit of the
/// vector form, not a property of the register file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit mode: vectors of 256 elements per 1024-byte register row.
    Single,
    /// 64-bit mode: vectors of 128 elements per row.
    Double,
}

impl Precision {
    /// Element size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// Elements per 1024-byte vector register row.
    pub const fn elems_per_row(self) -> usize {
        match self {
            Precision::Single => 256,
            Precision::Double => 128,
        }
    }
}

/// A pipelined functional unit: `stages` deep, one initiation per cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pipeline {
    /// Pipeline depth in stages.
    pub stages: u32,
}

impl Pipeline {
    /// The floating-point adder (6 stages in both modes).
    pub const fn adder(_p: Precision) -> Pipeline {
        Pipeline { stages: 6 }
    }

    /// The floating-point multiplier (5 stages single, 7 double).
    pub const fn multiplier(p: Precision) -> Pipeline {
        match p {
            Precision::Single => Pipeline { stages: 5 },
            Precision::Double => Pipeline { stages: 7 },
        }
    }

    /// Latency of one scalar operation, in cycles.
    pub const fn scalar_cycles(self) -> u64 {
        self.stages as u64
    }

    /// Cycles to stream an `n`-element vector through this unit:
    /// fill the pipe, then one result per cycle.
    pub const fn vector_cycles(self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.stages as u64 + (n - 1)
        }
    }
}

/// Cycles for an `n`-element vector form through a single unit.
pub const fn vector_cycles(unit: Pipeline, n: u64) -> u64 {
    unit.vector_cycles(n)
}

/// Cycles for an `n`-element **chained** form (e.g. SAXPY): the multiplier's
/// output feeds the adder, so the effective depth is the sum of both pipes
/// while the initiation rate stays one element per cycle.
pub const fn chained_vector_cycles(first: Pipeline, second: Pipeline, n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        (first.stages + second.stages) as u64 + (n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stage_counts() {
        assert_eq!(Pipeline::adder(Precision::Double).stages, 6);
        assert_eq!(Pipeline::adder(Precision::Single).stages, 6);
        assert_eq!(Pipeline::multiplier(Precision::Double).stages, 7);
        assert_eq!(Pipeline::multiplier(Precision::Single).stages, 5);
    }

    #[test]
    fn vector_throughput_is_one_per_cycle() {
        let add = Pipeline::adder(Precision::Double);
        assert_eq!(add.vector_cycles(1), 6);
        assert_eq!(add.vector_cycles(128), 6 + 127);
        assert_eq!(add.vector_cycles(0), 0);
        // Long vectors approach 1 cycle/element → 8 MFLOPS per unit.
        let n = 1_000_000u64;
        let cycles = add.vector_cycles(n);
        let mflops = n as f64 / (cycles as f64 * CYCLE_NS as f64 * 1e-9) / 1e6;
        assert!((mflops - 8.0).abs() < 0.01, "{mflops}");
    }

    #[test]
    fn chained_saxpy_peak_is_16_mflops() {
        // SAXPY does 2 flops per element through the chained pipe.
        let mul = Pipeline::multiplier(Precision::Double);
        let add = Pipeline::adder(Precision::Double);
        let n = 1_000_000u64;
        let cycles = chained_vector_cycles(mul, add, n);
        assert_eq!(cycles, 13 + (n - 1));
        let mflops = (2 * n) as f64 / (cycles as f64 * CYCLE_NS as f64 * 1e-9) / 1e6;
        assert!((mflops - 16.0).abs() < 0.01, "{mflops}");
    }

    #[test]
    fn row_geometry() {
        assert_eq!(Precision::Double.elems_per_row(), 128);
        assert_eq!(Precision::Single.elems_per_row(), 256);
        assert_eq!(
            Precision::Double.bytes() * Precision::Double.elems_per_row(),
            1024
        );
        assert_eq!(
            Precision::Single.bytes() * Precision::Single.elems_per_row(),
            1024
        );
    }
}
