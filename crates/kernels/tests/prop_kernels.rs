//! Property tests for the distributed kernels: verified numerics on random
//! problem sizes, seeds and machine shapes. Seeded random cases via [`Rng`]
//! (offline, reproducible).

use t_series_core::{Machine, MachineCfg};
use ts_kernels::{fft, lu, matmul, sort, stencil};
use ts_sim::Rng;

const CASES: usize = 12;

#[test]
fn matmul_random() {
    let mut rng = Rng::new(0x4e10_0001);
    for _ in 0..CASES {
        let dim_half = rng.below(3) as u32;
        let blocks = rng.range(1, 4);
        let seed = rng.next_u64();
        let dim = dim_half * 2;
        let s = 1usize << dim_half;
        let n = s * blocks * 2;
        let mut m = Machine::build(MachineCfg::cube(dim));
        let (a, b, c, stats) = matmul::distributed_matmul(&mut m, n, seed);
        let want = matmul::reference_matmul(n, &a, &b);
        for (got, w) in c.iter().zip(&want) {
            assert!((got - w).abs() <= 1e-12 * w.abs().max(1.0));
        }
        assert_eq!(stats.flops, 2 * (n * n * n) as u64);
    }
}

#[test]
fn fft_random() {
    let mut rng = Rng::new(0x4e10_0002);
    for _ in 0..CASES {
        let dim = rng.below(4) as u32;
        let log_local = 1 + rng.below(4) as u32;
        let seed = rng.next_u64();
        let total = 1usize << (dim + log_local);
        let mut st = seed;
        let input: Vec<(f64, f64)> = (0..total)
            .map(|_| (ts_kernels::rand_f64(&mut st), ts_kernels::rand_f64(&mut st)))
            .collect();
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (got, _) = fft::distributed_fft(&mut m, &input);
        let want = fft::reference_dft(&input);
        for (&(gr, gi), &(wr, wi)) in got.iter().zip(&want) {
            assert!((gr - wr).abs() < 1e-9 * total as f64, "{gr} vs {wr}");
            assert!((gi - wi).abs() < 1e-9 * total as f64);
        }
    }
}

#[test]
fn lu_random() {
    let mut rng = Rng::new(0x4e10_0003);
    let mut cases = 0;
    while cases < CASES {
        let dim = rng.below(3) as u32;
        let n_scale = rng.range(1, 4);
        let seed = rng.next_u64();
        let n = 8 * n_scale * (1usize << dim).max(1);
        if n > 64 {
            continue;
        }
        cases += 1;
        let mut m = Machine::build(MachineCfg::cube(dim));
        let (a, perm, lumat, _) = lu::distributed_lu(&mut m, n, seed);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let err = lu::reconstruction_error(n, &a, &perm, &lumat);
        assert!(err < 1e-9, "reconstruction error {err}");
    }
}

#[test]
fn sort_random() {
    let mut rng = Rng::new(0x4e10_0004);
    for _ in 0..CASES {
        let dim = rng.below(5) as u32;
        let per_node = rng.range(1, 33);
        let seed = rng.next_u64();
        let total = per_node << dim;
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (got, _) = sort::distributed_sort(&mut m, total, seed);
        assert_eq!(got.len(), total);
        for w in got.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Same multiset as the input (regenerate it).
        let mut st = seed;
        let mut want: Vec<f64> = (0..total)
            .map(|_| ts_kernels::rand_f64(&mut st) * 1e6)
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
    }
}

#[test]
fn jacobi_random() {
    let mut rng = Rng::new(0x4e10_0005);
    for _ in 0..CASES {
        let dim = rng.below(5) as u32;
        let g_pow = 1 + rng.below(3) as u32;
        let sweeps = rng.range(1, 7);
        let seed = rng.next_u64();
        let g = 1usize << g_pow;
        let half = dim / 2;
        let (sx, sy) = (1usize << half, 1usize << (dim - half));
        let mut st = seed;
        let init: Vec<f64> = (0..sx * g * sy * g)
            .map(|_| ts_kernels::rand_f64(&mut st))
            .collect();
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (got, _) = stencil::distributed_jacobi(&mut m, g, sweeps, &init);
        let want = stencil::reference_jacobi(sx * g, sy * g, sweeps, &init);
        for (&a, &b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

/// Determinism across kernels: identical stats on identical runs.
#[test]
fn kernel_runs_are_deterministic() {
    let mut rng = Rng::new(0x4e10_0006);
    for _ in 0..4 {
        let seed = rng.next_u64();
        let run = || {
            let mut m = Machine::build(MachineCfg::cube(2));
            let (_, _, c, stats) = matmul::distributed_matmul(&mut m, 8, seed);
            (c, stats.elapsed, stats.bytes_sent)
        };
        let (c1, t1, b1) = run();
        let (c2, t2, b2) = run();
        assert_eq!(c1, c2);
        assert_eq!(t1, t2);
        assert_eq!(b1, b2);
    }
}
