//! Property tests for the distributed kernels: verified numerics on random
//! problem sizes, seeds and machine shapes.

use proptest::prelude::*;
use t_series_core::{Machine, MachineCfg};
use ts_kernels::{fft, lu, matmul, sort, stencil};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_random(dim_half in 0u32..=2, blocks in 1usize..=3, seed in any::<u64>()) {
        let dim = dim_half * 2;
        let s = 1usize << dim_half;
        let n = s * blocks * 2;
        let mut m = Machine::build(MachineCfg::cube(dim));
        let (a, b, c, stats) = matmul::distributed_matmul(&mut m, n, seed);
        let want = matmul::reference_matmul(n, &a, &b);
        for (got, w) in c.iter().zip(&want) {
            prop_assert!((got - w).abs() <= 1e-12 * w.abs().max(1.0));
        }
        prop_assert_eq!(stats.flops, 2 * (n * n * n) as u64);
    }

    #[test]
    fn fft_random(dim in 0u32..=3, log_local in 1u32..=4, seed in any::<u64>()) {
        let total = 1usize << (dim + log_local);
        let mut st = seed;
        let input: Vec<(f64, f64)> = (0..total)
            .map(|_| (ts_kernels::rand_f64(&mut st), ts_kernels::rand_f64(&mut st)))
            .collect();
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (got, _) = fft::distributed_fft(&mut m, &input);
        let want = fft::reference_dft(&input);
        for (&(gr, gi), &(wr, wi)) in got.iter().zip(&want) {
            prop_assert!((gr - wr).abs() < 1e-9 * total as f64, "{} vs {}", gr, wr);
            prop_assert!((gi - wi).abs() < 1e-9 * total as f64);
        }
    }

    #[test]
    fn lu_random(dim in 0u32..=2, n_scale in 1usize..=3, seed in any::<u64>()) {
        let n = 8 * n_scale * (1usize << dim).max(1);
        prop_assume!(n <= 64);
        let mut m = Machine::build(MachineCfg::cube(dim));
        let (a, perm, lumat, _) = lu::distributed_lu(&mut m, n, seed);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let err = lu::reconstruction_error(n, &a, &perm, &lumat);
        prop_assert!(err < 1e-9, "reconstruction error {}", err);
    }

    #[test]
    fn sort_random(dim in 0u32..=4, per_node in 1usize..=32, seed in any::<u64>()) {
        let total = per_node << dim;
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (got, _) = sort::distributed_sort(&mut m, total, seed);
        prop_assert_eq!(got.len(), total);
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Same multiset as the input (regenerate it).
        let mut st = seed;
        let mut want: Vec<f64> =
            (0..total).map(|_| ts_kernels::rand_f64(&mut st) * 1e6).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn jacobi_random(dim in 0u32..=4, g_pow in 1u32..=3, sweeps in 1usize..=6, seed in any::<u64>()) {
        let g = 1usize << g_pow;
        let half = dim / 2;
        let (sx, sy) = (1usize << half, 1usize << (dim - half));
        let mut st = seed;
        let init: Vec<f64> =
            (0..sx * g * sy * g).map(|_| ts_kernels::rand_f64(&mut st)).collect();
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (got, _) = stencil::distributed_jacobi(&mut m, g, sweeps, &init);
        let want = stencil::reference_jacobi(sx * g, sy * g, sweeps, &init);
        for (&a, &b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Determinism across kernels: identical stats on identical runs.
    #[test]
    fn kernel_runs_are_deterministic(seed in any::<u64>()) {
        let run = || {
            let mut m = Machine::build(MachineCfg::cube(2));
            let (_, _, c, stats) = matmul::distributed_matmul(&mut m, 8, seed);
            (c, stats.elapsed, stats.bytes_sent)
        };
        let (c1, t1, b1) = run();
        let (c2, t2, b2) = run();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(b1, b2);
    }
}
