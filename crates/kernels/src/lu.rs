//! Distributed LU factorization with partial pivoting — the kernel that
//! exercises every §II mechanism at once, against **real node memory**:
//!
//! * matrix rows live in memory rows (one 128-element row each, bank B);
//! * column access is strided, so the pivot-search column is **gathered**
//!   by the control processor at 1.6 µs/element (the paper's number);
//! * the local pivot candidate comes from the `AbsMax` **vector form**;
//! * the global pivot is agreed by an all-gather (the cube collective);
//! * the pivot row is **broadcast** down a binomial tree;
//! * the division by the pivot has no divider to use, so it runs the
//!   Newton–Raphson **software reciprocal** (`ts_fpu::softdiv`);
//! * elimination is one chained **SAXPY vector form per row**
//!   (`A[i,:] −= f · pivot_row`), streaming bank A (scratch) against
//!   bank B (matrix) at the full dual-bank rate.
//!
//! Rows are distributed cyclically (global row g on node g mod p) and
//! pivoting is implicit (a shared permutation); local storage still uses
//! physical row moves where rows swap within a node (experiment E15
//! compares those moves against element-wise swapping).

use ts_cube::Hypercube;
use ts_fpu::{softdiv, Sf64};
use ts_mem::ROW_WORDS;
use ts_node::NodeCtx;
use ts_vec::VecForm;

use crate::{rand_f64, KernelStats};

/// Where a node keeps things in its memory: scratch rows in bank A
/// (so SAXPY streams cross-bank), matrix rows from the start of bank B.
pub struct LuLayout {
    /// First memory row of the local matrix block (bank B).
    pub matrix_base: usize,
    /// Scratch row for the broadcast pivot row (bank A).
    pub pivot_row: usize,
    /// Scratch row for the gathered pivot-search column (bank A).
    pub column_row: usize,
}

impl LuLayout {
    /// Layout for a node whose memory has its bank split at `rows_a`.
    pub fn new(rows_a: usize) -> LuLayout {
        LuLayout {
            matrix_base: rows_a,
            pivot_row: 0,
            column_row: 1,
        }
    }
}

/// The per-node LU program. `n` is the (global) matrix order; rows are
/// stored one per memory row, so `n ≤ 128`. Returns the permutation
/// `perm[k] = global row chosen as pivot k` (identical on every node).
pub async fn lu_node(ctx: NodeCtx, cube: Hypercube, n: usize) -> Vec<usize> {
    let p = cube.nodes() as usize;
    let me = ctx.id() as usize;
    let layout = LuLayout::new(ctx.mem().cfg().rows_a());
    let local_rows = n.div_ceil(p);
    let mut perm = Vec::with_capacity(n);
    // Which of my local rows are still unpivoted, by global index.
    let mut free: Vec<usize> = (0..local_rows)
        .map(|l| l * p + me)
        .filter(|&g| g < n)
        .collect();

    for k in 0..n {
        // --- local pivot candidate: gather column k of my free rows, then
        // AbsMax over the gathered vector ----------------------------------
        let (local_val, local_row) = if free.is_empty() {
            (0.0f64, usize::MAX)
        } else {
            let srcs: Vec<usize> = free
                .iter()
                .map(|&g| {
                    let l = g / p;
                    (layout.matrix_base + l) * ROW_WORDS + 2 * k
                })
                .collect();
            ctx.gather64(&srcs, layout.column_row * ROW_WORDS)
                .await
                .unwrap();
            let r = ctx
                .vec(
                    VecForm::AbsMax,
                    layout.column_row,
                    layout.column_row,
                    0,
                    free.len(),
                )
                .await
                .unwrap();
            let idx = r.index.unwrap();
            (f64::from_bits(r.scalar.unwrap()), free[idx])
        };

        // --- agree on the global pivot (all-gather of candidates) ---------
        let mine = vec![
            local_val.to_bits() as u32,
            (local_val.to_bits() >> 32) as u32,
            local_row as u32,
        ];
        let all = t_series_core::collectives::allgather(&ctx, cube, mine).await;
        let (mut best_val, mut best_row) = (-1.0f64, usize::MAX);
        for (_, words) in &all {
            let v = f64::from_bits(words[0] as u64 | ((words[1] as u64) << 32));
            let r = words[2] as usize;
            if r != usize::MAX as u32 as usize && (v > best_val || (v == best_val && r < best_row))
            {
                best_val = v;
                best_row = r;
            }
        }
        perm.push(best_row);
        let owner = (best_row % p) as u32;

        // --- broadcast the pivot row -------------------------------------
        let pivot_words: Option<Vec<u32>> = if me == owner as usize {
            let l = best_row / p;
            let mem = ctx.mem();
            let base = (layout.matrix_base + l) * ROW_WORDS;
            Some(
                (0..2 * n)
                    .map(|i| mem.read_word(base + i).unwrap())
                    .collect(),
            )
        } else {
            None
        };
        let pivot = t_series_core::collectives::broadcast(&ctx, cube, owner, pivot_words).await;
        let pivot_f: Vec<Sf64> = pivot
            .chunks_exact(2)
            .map(|c| Sf64::from_bits(c[0] as u64 | ((c[1] as u64) << 32)))
            .collect();
        // Software reciprocal of the pivot element (no divider!).
        let pivot_recip = softdiv::recip(pivot_f[k]);
        ctx.charge_vec_flops(softdiv::RECIP_FLOPS).await;

        // Owner retires the pivot row from its free set.
        if me == owner as usize {
            free.retain(|&g| g != best_row);
        }
        if free.is_empty() {
            continue;
        }

        // --- write the masked pivot row into bank-A scratch ---------------
        // Columns ≤ k are zeroed so a full-row SAXPY leaves the already-
        // factored part (and the stored multipliers) untouched.
        {
            let mut mem = ctx.mem_mut();
            let base = layout.pivot_row * ROW_WORDS;
            for (j, &pf) in pivot_f.iter().enumerate().take(n) {
                let v = if j > k { pf } else { Sf64::ZERO };
                mem.write_f64(base + 2 * j, v).unwrap();
            }
        }
        // Masking is a control-processor pass over the row.
        ctx.cp_compute(n as u64).await;

        // --- eliminate every free local row -------------------------------
        for &g in &free.clone() {
            let l = g / p;
            let row = layout.matrix_base + l;
            let aik = ctx.mem().read_f64(row * ROW_WORDS + 2 * k).unwrap();
            // Multiplier f = a[i][k] · (1 / pivot).
            let f = aik * pivot_recip;
            ctx.charge_vec_flops(1).await;
            // A[i, k+1..] −= f · pivot_row  (full-row chained SAXPY).
            ctx.vec(VecForm::Saxpy(-f), layout.pivot_row, row, row, n)
                .await
                .unwrap();
            // Store the multiplier where the zero just appeared (L factor).
            ctx.mem_mut().write_f64(row * ROW_WORDS + 2 * k, f).unwrap();
            ctx.cp_compute(4).await;
        }
    }
    perm
}

/// The per-node triangular-solve program (`Ly = Pb`, then `Ux = y`),
/// run after [`lu_node`] with the same storage. All nodes receive the
/// replicated pivot permutation and right-hand side; every node returns
/// the full solution vector (replicated, like the paper's homogeneous
/// programs would keep it).
///
/// Each step has a true sequential dependency — y\[k\] needs y\[0..k\] — so
/// the solve is latency-bound: one small broadcast per row, the classic
/// reason triangular solves scale poorly on message-passing machines.
pub async fn solve_node(
    ctx: NodeCtx,
    cube: Hypercube,
    n: usize,
    perm: Vec<usize>,
    b: Vec<f64>,
) -> Vec<f64> {
    let p = cube.nodes() as usize;
    let me = ctx.id() as usize;
    let layout = LuLayout::new(ctx.mem().cfg().rows_a());
    let read_row_vals = |g: usize, lo: usize, hi: usize| -> Vec<Sf64> {
        let l = g / p;
        let base = (layout.matrix_base + l) * ROW_WORDS;
        let mem = ctx.mem();
        (lo..hi)
            .map(|j| mem.read_f64(base + 2 * j).unwrap())
            .collect()
    };

    // Forward substitution: y[k] = (Pb)[k] − L[k, 0..k] · y[0..k].
    let mut y: Vec<Sf64> = Vec::with_capacity(n);
    for (k, &g) in perm.iter().enumerate() {
        let owner = (g % p) as u32;
        let val = if me == owner as usize {
            let lrow = read_row_vals(g, 0, k);
            let dot = ctx.dot_values(&lrow, &y[..k]).await;
            let v = Sf64::from(b[g]) - dot;
            Some(vec![v.to_bits() as u32, (v.to_bits() >> 32) as u32])
        } else {
            None
        };
        let words = t_series_core::collectives::broadcast(&ctx, cube, owner, val).await;
        y.push(Sf64::from_bits(words[0] as u64 | ((words[1] as u64) << 32)));
    }

    // Back substitution: x[k] = (y[k] − U[k, k+1..] · x[k+1..]) / U[k][k].
    let mut x = vec![Sf64::ZERO; n];
    for k in (0..n).rev() {
        let g = perm[k];
        let owner = (g % p) as u32;
        let val = if me == owner as usize {
            let urow = read_row_vals(g, k, n);
            let dot = ctx.dot_values(&urow[1..], &x[k + 1..]).await;
            let recip = softdiv::recip(urow[0]);
            ctx.charge_vec_flops(softdiv::RECIP_FLOPS + 2).await;
            let v = (y[k] - dot) * recip;
            Some(vec![v.to_bits() as u32, (v.to_bits() >> 32) as u32])
        } else {
            None
        };
        let words = t_series_core::collectives::broadcast(&ctx, cube, owner, val).await;
        x[k] = Sf64::from_bits(words[0] as u64 | ((words[1] as u64) << 32));
    }
    x.into_iter().map(|v| v.to_host()).collect()
}

/// Host driver: factor **and solve** `A x = b` end to end; returns
/// `(A, b, x, stats)` with the stats covering the whole run.
pub fn distributed_solve(
    machine: &mut t_series_core::Machine,
    n: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, KernelStats) {
    let (a, perm, _lu, _) = distributed_lu(machine, n, seed);
    let mut st = seed ^ 0xb0b;
    let b: Vec<f64> = (0..n).map(|_| rand_f64(&mut st)).collect();
    let cube = machine.cube;
    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            machine
                .handle()
                .spawn(solve_node(node.ctx(), cube, n, perm.clone(), b.clone()))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "solve deadlocked");
    let elapsed = machine.now().since(t0);
    let xs: Vec<Vec<f64>> = handles
        .into_iter()
        .map(|h| h.try_take().expect("solve incomplete"))
        .collect();
    for x in &xs[1..] {
        assert_eq!(x, &xs[0], "nodes disagree on the solution");
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, cube.nodes() as u64);
    (a, b, xs[0].clone(), stats)
}

/// Max-norm residual `|A·x − b|` for verification.
pub fn residual(n: usize, a: &[f64], x: &[f64], b: &[f64]) -> f64 {
    (0..n)
        .map(|i| {
            let ax: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            (ax - b[i]).abs()
        })
        .fold(0.0, f64::max)
}

/// Host driver: factor a random `n×n` matrix on `machine`; returns
/// `(original A, perm, combined LU rows, stats)`.
pub fn distributed_lu(
    machine: &mut t_series_core::Machine,
    n: usize,
    seed: u64,
) -> (Vec<f64>, Vec<usize>, Vec<f64>, KernelStats) {
    let cube = machine.cube;
    let p = cube.nodes() as usize;
    assert!(n <= 128, "one matrix row per 128-element memory row");
    let mut st = seed;
    let a: Vec<f64> = (0..n * n).map(|_| rand_f64(&mut st) + 0.1).collect();

    // Load rows into node memories (cyclic by global row).
    for g in 0..n {
        let node = &machine.nodes[g % p];
        let layout = LuLayout::new(node.mem().cfg().rows_a());
        let l = g / p;
        let mut mem = node.mem_mut();
        let base = (layout.matrix_base + l) * ROW_WORDS;
        for j in 0..n {
            mem.write_f64(base + 2 * j, Sf64::from(a[g * n + j]))
                .unwrap();
        }
    }

    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| machine.handle().spawn(lu_node(node.ctx(), cube, n)))
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "LU deadlocked");
    let elapsed = machine.now().since(t0);

    let perms: Vec<Vec<usize>> = handles
        .into_iter()
        .map(|h| h.try_take().expect("lu incomplete"))
        .collect();
    for p2 in &perms[1..] {
        assert_eq!(p2, &perms[0], "nodes disagree on the pivot permutation");
    }
    // Collect the factored rows back out (still in original row slots).
    let mut lu = vec![0.0f64; n * n];
    for g in 0..n {
        let node = &machine.nodes[g % p];
        let layout = LuLayout::new(node.mem().cfg().rows_a());
        let l = g / p;
        let mem = node.mem();
        let base = (layout.matrix_base + l) * ROW_WORDS;
        for j in 0..n {
            lu[g * n + j] = mem.read_f64(base + 2 * j).unwrap().to_host();
        }
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, p as u64);
    (a, perms[0].clone(), lu, stats)
}

/// Verify `P·A = L·U`: reconstruct A from the factored rows and the
/// permutation; returns the max absolute error.
pub fn reconstruction_error(n: usize, a: &[f64], perm: &[usize], lu: &[f64]) -> f64 {
    // Row `perm[k]` of the factored storage holds U[k,·] right of the
    // diagonal and the multipliers L[·,k] below it, scattered by perm.
    // Build explicit L and U in pivot order.
    let pos: Vec<usize> = {
        let mut pos = vec![0; n];
        for (k, &g) in perm.iter().enumerate() {
            pos[g] = k;
        }
        pos
    };
    // Columns are eliminated in natural order (column k at step k), so the
    // row chosen at step k holds multipliers L[k][0..k] in its first k
    // columns and U[k][k..] from the diagonal on.
    let mut l = vec![0.0; n * n];
    let mut u = vec![0.0; n * n];
    for g in 0..n {
        let k = pos[g];
        for j in 0..k {
            l[k * n + j] = lu[g * n + j];
        }
        l[k * n + k] = 1.0;
        for j in k..n {
            u[k * n + j] = lu[g * n + j];
        }
    }
    let mut max_err = 0.0f64;
    for k in 0..n {
        let g = perm[k]; // original row index
        for j in 0..n {
            let mut s = 0.0;
            for t in 0..=k.min(j) {
                s += l[k * n + t] * u[t * n + j];
            }
            let err = (s - a[g * n + j]).abs();
            if err > max_err {
                max_err = err;
            }
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, n: usize) -> KernelStats {
        let mut m = Machine::build(MachineCfg::cube(dim));
        let (a, perm, lu, stats) = distributed_lu(&mut m, n, 3);
        // Permutation is a permutation.
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let err = reconstruction_error(n, &a, &perm, &lu);
        assert!(err < 1e-10, "reconstruction error {err} (dim {dim}, n {n})");
        stats
    }

    #[test]
    fn lu_single_node() {
        let stats = check(0, 8);
        assert!(stats.flops > 0);
    }

    #[test]
    fn lu_on_a_square() {
        let stats = check(2, 16);
        assert!(stats.bytes_sent > 0);
        // Column gathers happened (the 1.6 µs path).
        // (metrics key is cp.gathered; see NodeCtx::gather64)
    }

    #[test]
    fn lu_larger() {
        check(2, 32);
    }

    #[test]
    fn solve_has_small_residual() {
        for dim in [0u32, 2] {
            let mut m = Machine::build(MachineCfg::cube(dim));
            let (a, b, x, stats) = distributed_solve(&mut m, 24, 8);
            let r = residual(24, &a, &x, &b);
            assert!(r < 1e-8, "residual {r} on {dim}-cube");
            assert!(stats.flops > 0);
        }
    }

    #[test]
    fn pivoting_actually_pivots() {
        // A matrix with a tiny leading element forces a row interchange.
        let mut m = Machine::build(MachineCfg::cube(0));
        let n = 4;
        let special = [
            1e-12, 1.0, 0.0, 0.0, //
            1.0, 1.0, 1.0, 1.0, //
            0.0, 1.0, 2.0, 1.0, //
            0.0, 0.0, 1.0, 3.0,
        ];
        let node = &m.nodes[0];
        let layout = LuLayout::new(node.mem().cfg().rows_a());
        for g in 0..n {
            let mut mem = node.mem_mut();
            for j in 0..n {
                mem.write_f64(
                    (layout.matrix_base + g) * ROW_WORDS + 2 * j,
                    Sf64::from(special[g * n + j]),
                )
                .unwrap();
            }
        }
        let cube = m.cube;
        let ctx = m.nodes[0].ctx();
        let jh = m.launch_on(0, lu_node(ctx, cube, n));
        assert!(m.run().quiescent);
        let perm = jh.try_take().unwrap();
        assert_ne!(perm[0], 0, "the tiny leading element must not be the pivot");
    }
}
