//! Conjugate gradients on the distributed machine — the iterative-solver
//! counterpart to the LU kernel, and the workload class (sparse/structured
//! systems from PDEs) behind the paper's mesh embeddings.
//!
//! The system is the standard 2-D five-point Laplacian on an
//! (s·g)×(s·g) grid, distributed like the Jacobi kernel: each node owns a
//! g×g tile. One CG iteration needs
//!
//! * a **halo exchange** + local stencil apply (`q = A·p`),
//! * two **all-reduce** scalar products (`pᵀq`, `rᵀr`) over the cube,
//! * three local AXPYs through the vector pipes.
//!
//! The vector work charges the node's 16 MFLOPS pipes; the dots pay the
//! log₂ p dimension-exchange latency — the communication/computation
//! balance of §II, iterated.

use ts_cube::{embed::MeshEmbedding, Hypercube};
use ts_fpu::Sf64;
use ts_node::{CombineOp, NodeCtx};

use crate::KernelStats;

fn pack(vals: &[f64]) -> Vec<u32> {
    let mut words = Vec::with_capacity(vals.len() * 2);
    for v in vals {
        let b = v.to_bits();
        words.push(b as u32);
        words.push((b >> 32) as u32);
    }
    words
}

fn unpack(words: &[u32]) -> Vec<f64> {
    words
        .chunks_exact(2)
        .map(|c| f64::from_bits(c[0] as u64 | ((c[1] as u64) << 32)))
        .collect()
}

/// Apply the five-point Laplacian `q = A·p` on one tile with fresh halos.
struct TileGeometry {
    g: usize,
    west: Option<usize>,
    east: Option<usize>,
    north: Option<usize>,
    south: Option<usize>,
}

impl TileGeometry {
    fn new(ctx: &NodeCtx, cube: Hypercube, g: usize) -> TileGeometry {
        let half = cube.dim() / 2;
        let mesh = MeshEmbedding::new(cube, &[half, cube.dim() - half]);
        let me = ctx.id();
        let coords = mesh.coords_of(me);
        let neighbor = |axis: usize, forward: bool| -> Option<usize> {
            mesh.step(&coords, axis, forward)
                .map(|nc| (me ^ mesh.node_at(&nc)).trailing_zeros() as usize)
        };
        TileGeometry {
            g,
            west: neighbor(0, false),
            east: neighbor(0, true),
            north: neighbor(1, false),
            south: neighbor(1, true),
        }
    }

    /// Halo-exchange `p`, then `q[i] = 4p[i] − (N+S+E+W)`.
    async fn apply(&self, ctx: &NodeCtx, p: &[f64]) -> Vec<f64> {
        let g = self.g;
        let col = |x: usize| -> Vec<f64> { (0..g).map(|y| p[y * g + x]).collect() };
        let row = |y: usize| -> Vec<f64> { p[y * g..(y + 1) * g].to_vec() };
        let h = ctx.handle().clone();
        let mut sends = Vec::new();
        for (dim, strip) in [
            (self.west, col(0)),
            (self.east, col(g - 1)),
            (self.north, row(0)),
            (self.south, row(g - 1)),
        ] {
            if let Some(d) = dim {
                let c = ctx.clone();
                let words = pack(&strip);
                sends.push(h.spawn(async move { c.send_dim(d, words).await }));
            }
        }
        let mut halos: [Option<Vec<f64>>; 4] = [None, None, None, None];
        let mut recvs = Vec::new();
        for (slot, dim) in [self.west, self.east, self.north, self.south]
            .into_iter()
            .enumerate()
        {
            if let Some(d) = dim {
                let c = ctx.clone();
                recvs.push((slot, h.spawn(async move { c.recv_dim(d).await })));
            }
        }
        for (slot, jh) in recvs {
            halos[slot] = Some(unpack(&jh.await));
        }
        for s in sends {
            s.await;
        }
        let [w_h, e_h, n_h, s_h] = halos;
        let at = |x: isize, y: isize| -> f64 {
            if x < 0 {
                w_h.as_ref().map_or(0.0, |h| h[y as usize])
            } else if x >= g as isize {
                e_h.as_ref().map_or(0.0, |h| h[y as usize])
            } else if y < 0 {
                n_h.as_ref().map_or(0.0, |h| h[x as usize])
            } else if y >= g as isize {
                s_h.as_ref().map_or(0.0, |h| h[x as usize])
            } else {
                p[y as usize * g + x as usize]
            }
        };
        let mut q = vec![0.0; g * g];
        for y in 0..g as isize {
            for x in 0..g as isize {
                q[y as usize * g + x as usize] = 4.0 * p[y as usize * g + x as usize]
                    - (at(x - 1, y) + at(x + 1, y) + at(x, y - 1) + at(x, y + 1));
            }
        }
        ctx.charge_vec_flops(5 * (g * g) as u64).await;
        q
    }
}

/// Global dot product: local dot via the vector pipe, then a scalar
/// all-reduce over the cube.
async fn global_dot(ctx: &NodeCtx, cube: Hypercube, a: &[f64], b: &[f64]) -> f64 {
    let asf: Vec<Sf64> = a.iter().map(|&v| Sf64::from(v)).collect();
    let bsf: Vec<Sf64> = b.iter().map(|&v| Sf64::from(v)).collect();
    let local = ctx.dot_values(&asf, &bsf).await;
    let total = t_series_core::collectives::allreduce(ctx, cube, CombineOp::Add, vec![local]).await;
    total[0].to_host()
}

/// The per-node CG program: solve `A x = b` (five-point Laplacian) to
/// tolerance, returning this node's tile of x and the iteration count.
pub async fn cg_node(
    ctx: NodeCtx,
    cube: Hypercube,
    g: usize,
    b: Vec<f64>,
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let geo = TileGeometry::new(&ctx, cube, g);
    let n_local = g * g;
    let mut x = vec![0.0; n_local];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs = global_dot(&ctx, cube, &r, &r).await;
    let mut iters = 0;
    while iters < max_iters && rs.sqrt() > tol {
        let q = geo.apply(&ctx, &p).await;
        let pq = global_dot(&ctx, cube, &p, &q).await;
        let alpha = rs / pq;
        for i in 0..n_local {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        ctx.charge_vec_flops(4 * n_local as u64).await;
        let rs_new = global_dot(&ctx, cube, &r, &r).await;
        let beta = rs_new / rs;
        for i in 0..n_local {
            p[i] = r[i] + beta * p[i];
        }
        ctx.charge_vec_flops(2 * n_local as u64).await;
        rs = rs_new;
        iters += 1;
    }
    (x, iters)
}

/// Host driver: solve the Laplacian system for a random right-hand side;
/// returns `(b, x, iterations, stats)` with grids in row-major global order.
pub fn distributed_cg(
    machine: &mut t_series_core::Machine,
    g: usize,
    tol: f64,
    seed: u64,
) -> (Vec<f64>, Vec<f64>, usize, KernelStats) {
    let cube = machine.cube;
    let half = cube.dim() / 2;
    let mesh = MeshEmbedding::new(cube, &[half, cube.dim() - half]);
    let (sx, sy) = (mesh.side(0) as usize, mesh.side(1) as usize);
    let side_x = sx * g;
    let mut st = seed;
    let b: Vec<f64> = (0..side_x * sy * g)
        .map(|_| crate::rand_f64(&mut st))
        .collect();

    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            let coords = mesh.coords_of(node.id);
            let (cx, cy) = (coords[0] as usize, coords[1] as usize);
            let mut tile = vec![0.0; g * g];
            for y in 0..g {
                for x in 0..g {
                    tile[y * g + x] = b[(cy * g + y) * side_x + cx * g + x];
                }
            }
            machine
                .handle()
                .spawn(cg_node(node.ctx(), cube, g, tile, tol, 10_000))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "CG deadlocked");
    let elapsed = machine.now().since(t0);

    let mut x = vec![0.0; b.len()];
    let mut iters = 0;
    for (node, jh) in machine.nodes.iter().zip(handles) {
        let (tile, it) = jh.try_take().expect("cg incomplete");
        iters = it;
        let coords = mesh.coords_of(node.id);
        let (cx, cy) = (coords[0] as usize, coords[1] as usize);
        for y in 0..g {
            for xx in 0..g {
                x[(cy * g + y) * side_x + cx * g + xx] = tile[y * g + xx];
            }
        }
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, cube.nodes() as u64);
    (b, x, iters, stats)
}

/// Max-norm residual `|A·x − b|` of the global five-point system (host).
pub fn cg_residual(width: usize, height: usize, x: &[f64], b: &[f64]) -> f64 {
    let at = |g: &[f64], xx: isize, yy: isize| -> f64 {
        if xx < 0 || yy < 0 || xx >= width as isize || yy >= height as isize {
            0.0
        } else {
            g[yy as usize * width + xx as usize]
        }
    };
    let mut worst = 0.0f64;
    for y in 0..height as isize {
        for xx in 0..width as isize {
            let ax = 4.0 * at(x, xx, y)
                - (at(x, xx - 1, y) + at(x, xx + 1, y) + at(x, xx, y - 1) + at(x, xx, y + 1));
            worst = worst.max((ax - b[y as usize * width + xx as usize]).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, g: usize) -> (usize, KernelStats) {
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (b, x, iters, stats) = distributed_cg(&mut m, g, 1e-10, 77);
        let half = dim / 2;
        let (sx, sy) = (1usize << half, 1usize << (dim - half));
        let res = cg_residual(sx * g, sy * g, &x, &b);
        assert!(res < 1e-8, "CG residual {res} (dim {dim}, g {g})");
        (iters, stats)
    }

    #[test]
    fn cg_single_node() {
        let (iters, stats) = check(0, 8);
        assert!(iters > 0 && iters <= 64 * 2);
        assert!(stats.flops > 0);
    }

    #[test]
    fn cg_on_a_square() {
        let (_, stats) = check(2, 4);
        assert!(stats.bytes_sent > 0, "halos and all-reduces use the links");
    }

    #[test]
    fn cg_on_an_8_node_machine() {
        check(3, 4);
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations() {
        // Exact arithmetic would finish in ≤ n steps; floating point with
        // a tight tolerance stays in the same ballpark for this SPD system.
        let mut m = Machine::build(MachineCfg::cube_small_mem(0, 8));
        let (_, _, iters, _) = distributed_cg(&mut m, 4, 1e-12, 3);
        assert!(iters <= 2 * 16, "iters = {iters}");
    }
}
