//! Bitonic sort across the hypercube — the paper's "sorting records" via
//! fast data movement.
//!
//! Each node holds an equal block of keys, locally sorted; the cube then
//! runs the classical hypercube bitonic network: log₂ p merge phases, phase
//! i performing i+1 **compare-split** exchanges (each across one cube
//! dimension — bit j of the node id). A compare-split sends the whole block
//! to the partner and keeps the lower or upper half of the merged pair, so
//! blocks stay sorted throughout. Total exchanges: n(n+1)/2 for an n-cube.
//!
//! Key comparisons are control-processor work (charged at 7.5 MIPS); the
//! block exchanges are real link traffic.

use ts_cube::Hypercube;
use ts_node::{occam, NodeCtx};

use crate::{rand_f64, KernelStats};

/// Merge two sorted slices and keep the lower (or upper) half.
fn compare_split(mine: &[f64], theirs: &[f64], keep_low: bool) -> Vec<f64> {
    let n = mine.len();
    debug_assert_eq!(theirs.len(), n);
    let mut merged = Vec::with_capacity(2 * n);
    let (mut i, mut j) = (0, 0);
    while merged.len() < 2 * n {
        if j >= n || (i < n && mine[i] <= theirs[j]) {
            merged.push(mine[i]);
            i += 1;
        } else {
            merged.push(theirs[j]);
            j += 1;
        }
    }
    if keep_low {
        merged[..n].to_vec()
    } else {
        merged[n..].to_vec()
    }
}

fn pack(vals: &[f64]) -> Vec<u32> {
    let mut words = Vec::with_capacity(vals.len() * 2);
    for v in vals {
        let b = v.to_bits();
        words.push(b as u32);
        words.push((b >> 32) as u32);
    }
    words
}

fn unpack(words: &[u32]) -> Vec<f64> {
    words
        .chunks_exact(2)
        .map(|c| f64::from_bits(c[0] as u64 | ((c[1] as u64) << 32)))
        .collect()
}

/// The per-node bitonic sort program: returns this node's sorted block;
/// blocks ascend with node id (node 0 ends with the global minimum).
pub async fn bitonic_node(ctx: NodeCtx, cube: Hypercube, mut local: Vec<f64>) -> Vec<f64> {
    let me = ctx.id();
    let nl = local.len();
    // Local sort: n log n comparisons of control-processor work.
    local.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cmps = (nl as u64) * (usize::BITS - nl.leading_zeros()) as u64;
    ctx.cp_compute(4 * cmps).await;

    for phase in 0..cube.dim() {
        for j in (0..=phase).rev() {
            let partner_bit = 1u32 << j;
            // Ascending region if bit (phase+1) of id is 0.
            let ascending = me & (1 << (phase + 1)) == 0 || phase + 1 == cube.dim();
            let keep_low = (me & partner_bit == 0) == ascending;
            let h = ctx.handle().clone();
            let tx = ctx.clone();
            let rx = ctx.clone();
            let out = pack(&local);
            let (_, theirs) = occam::par2(
                &h,
                async move { tx.send_dim(j as usize, out).await },
                async move { rx.recv_dim(j as usize).await },
            )
            .await;
            local = compare_split(&local, &unpack(&theirs), keep_low);
            ctx.cp_compute(4 * 2 * nl as u64).await; // merge pass
        }
    }
    local
}

/// Host driver: sort `total` random keys on the machine; returns the
/// globally sorted sequence and stats.
pub fn distributed_sort(
    machine: &mut t_series_core::Machine,
    total: usize,
    seed: u64,
) -> (Vec<f64>, KernelStats) {
    let cube = machine.cube;
    let p = cube.nodes() as usize;
    assert!(total.is_multiple_of(p));
    let nl = total / p;
    let mut st = seed;
    let keys: Vec<f64> = (0..total).map(|_| rand_f64(&mut st) * 1e6).collect();
    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            let lo = node.id as usize * nl;
            machine
                .handle()
                .spawn(bitonic_node(node.ctx(), cube, keys[lo..lo + nl].to_vec()))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "bitonic sort deadlocked");
    let elapsed = machine.now().since(t0);
    let mut out = Vec::with_capacity(total);
    for jh in handles {
        out.extend(jh.try_take().expect("sort incomplete"));
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, p as u64);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, total: usize) -> KernelStats {
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (got, stats) = distributed_sort(&mut m, total, 11);
        for w in got.windows(2) {
            assert!(w[0] <= w[1], "not sorted: {} > {}", w[0], w[1]);
        }
        assert_eq!(got.len(), total);
        stats
    }

    #[test]
    fn sorts_on_one_node() {
        check(0, 64);
    }

    #[test]
    fn sorts_on_a_line() {
        check(1, 32);
    }

    #[test]
    fn sorts_on_a_square() {
        let stats = check(2, 64);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn sorts_on_a_cube() {
        // 3 phases: 1+2+3 = 6 compare-splits per node.
        let stats = check(3, 128);
        let per_node_msgs = 6u64;
        let bytes = 8 * per_node_msgs * (128 / 8) * 8;
        assert_eq!(stats.bytes_sent, bytes);
    }

    #[test]
    fn compare_split_halves() {
        let a = vec![1.0, 4.0, 7.0];
        let b = vec![2.0, 3.0, 9.0];
        assert_eq!(compare_split(&a, &b, true), vec![1.0, 2.0, 3.0]);
        assert_eq!(compare_split(&a, &b, false), vec![4.0, 7.0, 9.0]);
    }
}
