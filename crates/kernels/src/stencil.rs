//! Jacobi relaxation on the embedded 2-D mesh — the workload behind the
//! "meshes (up to dimension n)" entry of Figure 3.
//!
//! The machine's nodes form an s×s mesh (Gray-coded, dilation 1); each owns
//! a g×g tile of the global (s·g)×(s·g) grid. Every sweep exchanges halo
//! rows/columns with the (up to four) mesh neighbours — mesh faces have no
//! neighbour; the global boundary is held at zero — then relaxes
//! `u' = ¼(N+S+E+W)`, charging the vector units 4 flops per interior
//! point. Numerics use host `f64` values carried through `Sf64` storage.

use ts_cube::{embed::MeshEmbedding, Hypercube};
use ts_node::NodeCtx;

use crate::KernelStats;

fn pack(vals: &[f64]) -> Vec<u32> {
    let mut words = Vec::with_capacity(vals.len() * 2);
    for v in vals {
        let b = v.to_bits();
        words.push(b as u32);
        words.push((b >> 32) as u32);
    }
    words
}

fn unpack(words: &[u32]) -> Vec<f64> {
    words
        .chunks_exact(2)
        .map(|c| f64::from_bits(c[0] as u64 | ((c[1] as u64) << 32)))
        .collect()
}

/// The per-node Jacobi program: `tile` is g×g row-major; runs `sweeps`
/// iterations and returns the final tile.
pub async fn jacobi_node(
    ctx: NodeCtx,
    cube: Hypercube,
    g: usize,
    mut tile: Vec<f64>,
    sweeps: usize,
) -> Vec<f64> {
    let half = cube.dim() / 2;
    let mesh = MeshEmbedding::new(cube, &[half, cube.dim() - half]);
    let me = ctx.id();
    let coords = mesh.coords_of(me);
    // Neighbour cube-dimension per (axis, forward).
    let neighbor = |axis: usize, forward: bool| -> Option<usize> {
        mesh.step(&coords, axis, forward)
            .map(|nc| (me ^ mesh.node_at(&nc)).trailing_zeros() as usize)
    };
    let west = neighbor(0, false);
    let east = neighbor(0, true);
    let north = neighbor(1, false);
    let south = neighbor(1, true);

    for _ in 0..sweeps {
        // Extract halo strips.
        let col = |x: usize| -> Vec<f64> { (0..g).map(|y| tile[y * g + x]).collect() };
        let row = |y: usize| -> Vec<f64> { tile[y * g..(y + 1) * g].to_vec() };
        // Exchange all four directions in PAR (deadlock-free: every edge
        // has a send and a receive posted simultaneously).
        let h = ctx.handle().clone();
        let mut sends = Vec::new();
        for (dim, strip) in [
            (west, col(0)),
            (east, col(g - 1)),
            (north, row(0)),
            (south, row(g - 1)),
        ] {
            if let Some(d) = dim {
                let c = ctx.clone();
                let words = pack(&strip);
                sends.push(h.spawn(async move { c.send_dim(d, words).await }));
            }
        }
        let mut halos: [Option<Vec<f64>>; 4] = [None, None, None, None];
        let mut recvs = Vec::new();
        for (slot, dim) in [west, east, north, south].into_iter().enumerate() {
            if let Some(d) = dim {
                let c = ctx.clone();
                recvs.push((slot, h.spawn(async move { c.recv_dim(d).await })));
            }
        }
        for (slot, jh) in recvs {
            halos[slot] = Some(unpack(&jh.await));
        }
        for s in sends {
            s.await;
        }
        let [w_halo, e_halo, n_halo, s_halo] = halos;

        // Relax.
        let at = |x: isize, y: isize| -> f64 {
            if x < 0 {
                w_halo.as_ref().map_or(0.0, |h| h[y as usize])
            } else if x >= g as isize {
                e_halo.as_ref().map_or(0.0, |h| h[y as usize])
            } else if y < 0 {
                n_halo.as_ref().map_or(0.0, |h| h[x as usize])
            } else if y >= g as isize {
                s_halo.as_ref().map_or(0.0, |h| h[x as usize])
            } else {
                tile[y as usize * g + x as usize]
            }
        };
        let mut next = vec![0.0f64; g * g];
        for y in 0..g as isize {
            for x in 0..g as isize {
                next[y as usize * g + x as usize] =
                    0.25 * (at(x - 1, y) + at(x + 1, y) + at(x, y - 1) + at(x, y + 1));
            }
        }
        tile = next;
        ctx.charge_vec_flops(4 * (g * g) as u64).await;
    }
    tile
}

/// Host driver: run `sweeps` Jacobi iterations over an initial global grid
/// (side = s·g); returns the final grid and stats.
pub fn distributed_jacobi(
    machine: &mut t_series_core::Machine,
    g: usize,
    sweeps: usize,
    init: &[f64],
) -> (Vec<f64>, KernelStats) {
    let cube = machine.cube;
    let half = cube.dim() / 2;
    let mesh = MeshEmbedding::new(cube, &[half, cube.dim() - half]);
    let (sx, sy) = (mesh.side(0) as usize, mesh.side(1) as usize);
    let side_x = sx * g;
    assert_eq!(init.len(), side_x * sy * g);

    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            let coords = mesh.coords_of(node.id);
            let (cx, cy) = (coords[0] as usize, coords[1] as usize);
            let mut tile = vec![0.0; g * g];
            for y in 0..g {
                for x in 0..g {
                    tile[y * g + x] = init[(cy * g + y) * side_x + cx * g + x];
                }
            }
            machine
                .handle()
                .spawn(jacobi_node(node.ctx(), cube, g, tile, sweeps))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "Jacobi deadlocked");
    let elapsed = machine.now().since(t0);

    let mut out = vec![0.0; init.len()];
    for (node, jh) in machine.nodes.iter().zip(handles) {
        let tile = jh.try_take().expect("jacobi incomplete");
        let coords = mesh.coords_of(node.id);
        let (cx, cy) = (coords[0] as usize, coords[1] as usize);
        for y in 0..g {
            for x in 0..g {
                out[(cy * g + y) * side_x + cx * g + x] = tile[y * g + x];
            }
        }
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, cube.nodes() as u64);
    (out, stats)
}

/// Host reference: the same sweeps on the full grid (zero boundary).
pub fn reference_jacobi(width: usize, height: usize, sweeps: usize, init: &[f64]) -> Vec<f64> {
    let mut cur = init.to_vec();
    let at = |g: &[f64], x: isize, y: isize| -> f64 {
        if x < 0 || y < 0 || x >= width as isize || y >= height as isize {
            0.0
        } else {
            g[y as usize * width + x as usize]
        }
    };
    for _ in 0..sweeps {
        let mut next = vec![0.0; cur.len()];
        for y in 0..height as isize {
            for x in 0..width as isize {
                next[y as usize * width + x as usize] = 0.25
                    * (at(&cur, x - 1, y)
                        + at(&cur, x + 1, y)
                        + at(&cur, x, y - 1)
                        + at(&cur, x, y + 1));
            }
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_f64;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, g: usize, sweeps: usize) -> KernelStats {
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let half = dim / 2;
        let (sx, sy) = (1usize << half, 1usize << (dim - half));
        let mut st = 5u64;
        let init: Vec<f64> = (0..sx * g * sy * g).map(|_| rand_f64(&mut st)).collect();
        let (got, stats) = distributed_jacobi(&mut m, g, sweeps, &init);
        let want = reference_jacobi(sx * g, sy * g, sweeps, &init);
        for (i, (&a, &b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-12, "grid[{i}] = {a}, want {b}");
        }
        stats
    }

    #[test]
    fn jacobi_single_node() {
        check(0, 8, 3);
    }

    #[test]
    fn jacobi_on_a_line() {
        check(1, 4, 4);
    }

    #[test]
    fn jacobi_on_a_square() {
        let stats = check(2, 4, 5);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn jacobi_on_an_8_node_rectangle() {
        check(3, 4, 3);
    }

    #[test]
    fn zero_boundary_decays_constant_field() {
        // A constant field with zero boundary must decay monotonically.
        let mut m = Machine::build(MachineCfg::cube_small_mem(2, 8));
        let g = 4;
        let init = vec![1.0; 8 * 8];
        let (out, _) = distributed_jacobi(&mut m, g, 10, &init);
        let max = out.iter().cloned().fold(0.0f64, f64::max);
        assert!(max < 1.0);
    }
}
