//! Sparse matrix × vector (CRS) — the irregular workload §II's
//! gather/scatter hardware exists for: "A primary use for the control
//! processor is to gather operands into a contiguous vector... With this
//! provision, the control processor can completely overlap the gather time
//! with vector arithmetic."
//!
//! The matrix is compressed-row storage, row-blocked over the nodes; x is
//! replicated by all-gather each application. For every row the control
//! processor **gathers** the x-entries named by the column indices into a
//! contiguous bank-A scratch vector (1.6 µs per nonzero — the real cost of
//! irregularity on this machine), then one `Dot` vector form multiplies
//! against the row's values in bank B.
//!
//! Two schedules are implemented:
//! * [`SpmvSchedule::Sequential`] — gather, then dot, per row;
//! * [`SpmvSchedule::Overlapped`] — issue row r's dot asynchronously and
//!   gather row r+1 meanwhile, the §II software pattern. With ~13+ flops
//!   of arithmetic per gathered element the gather would vanish; sparse
//!   rows have only 2 flops per element, so gather dominates — measured
//!   honestly by the E-harness.

use ts_cube::Hypercube;
use ts_fpu::Sf64;
use ts_mem::ROW_WORDS;
use ts_node::NodeCtx;
use ts_vec::VecForm;

use crate::{rand_f64, splitmix, KernelStats};

/// A compressed-row sparse matrix (host-side container).
#[derive(Clone, Debug)]
pub struct Crs {
    /// Matrix order.
    pub n: usize,
    /// Row start offsets (len n+1).
    pub row_ptr: Vec<usize>,
    /// Column indices, row-major.
    pub col_idx: Vec<usize>,
    /// Values, aligned with `col_idx`.
    pub values: Vec<f64>,
}

impl Crs {
    /// A random sparse matrix with about `nnz_per_row` entries per row
    /// (plus a guaranteed diagonal).
    pub fn random(n: usize, nnz_per_row: usize, seed: u64) -> Crs {
        let mut st = seed;
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            let mut cols = std::collections::BTreeSet::new();
            cols.insert(i); // diagonal
            for _ in 1..nnz_per_row {
                cols.insert((splitmix(&mut st) as usize) % n);
            }
            for c in cols {
                col_idx.push(c);
                values.push(rand_f64(&mut st));
            }
            row_ptr.push(col_idx.len());
        }
        Crs {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Host reference product.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        (0..self.n)
            .map(|i| {
                (self.row_ptr[i]..self.row_ptr[i + 1])
                    .map(|k| self.values[k] * x[self.col_idx[k]])
                    .sum()
            })
            .collect()
    }
}

/// Gather/compute scheduling of the per-row loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmvSchedule {
    /// Gather row k, then run row k's dot, strictly in order.
    Sequential,
    /// Run row k's dot while gathering row k+1 (§II's overlap pattern).
    Overlapped,
}

/// Node memory layout for the kernel.
///
/// * bank A row 0/1: double-buffered gather scratch (≤128 nonzeros/row);
/// * bank B row 0..: the replicated x vector (set up host-side);
/// * bank B row 512..: this node's row values, one memory row per matrix
///   row (≤128 nonzeros).
struct Layout {
    rows_a: usize,
}

impl Layout {
    fn scratch_row(&self, parity: usize) -> usize {
        parity & 1
    }

    fn x_word(&self, j: usize) -> usize {
        self.rows_a * ROW_WORDS + 2 * j
    }

    fn values_row(&self, local_row: usize) -> usize {
        self.rows_a + 512 + local_row
    }
}

/// The per-node program: y-block for this node's rows of `a` (the full CRS
/// is passed for structure; only this node's rows are touched). `x` is
/// already resident in node memory (host-side setup).
pub async fn spmv_node(
    ctx: NodeCtx,
    cube: Hypercube,
    a: std::rc::Rc<Crs>,
    schedule: SpmvSchedule,
) -> Vec<f64> {
    let p = cube.nodes() as usize;
    let me = ctx.id() as usize;
    let rows_per = a.n / p;
    let layout = Layout {
        rows_a: ctx.mem().cfg().rows_a(),
    };
    let my_rows = me * rows_per..(me + 1) * rows_per;

    let mut y = vec![0.0f64; rows_per];
    let mut pending: Option<(usize, ts_sim::JoinHandle<ts_vec::VecResult>)> = None;
    for (slot, i) in my_rows.clone().enumerate() {
        let lo = a.row_ptr[i];
        let hi = a.row_ptr[i + 1];
        let nnz = hi - lo;
        assert!(nnz <= 128, "row fits one scratch row");
        // Gather the x entries this row touches into scratch.
        let srcs: Vec<usize> = a.col_idx[lo..hi]
            .iter()
            .map(|&j| layout.x_word(j))
            .collect();
        let scratch = layout.scratch_row(slot);
        ctx.gather64(&srcs, scratch * ROW_WORDS).await.unwrap();
        match schedule {
            SpmvSchedule::Sequential => {
                let r = ctx
                    .vec(VecForm::Dot, scratch, layout.values_row(slot), 0, nnz)
                    .await
                    .unwrap();
                y[slot] = f64::from_bits(r.scalar.unwrap());
            }
            SpmvSchedule::Overlapped => {
                // Retire the previous row's dot, then issue this one and
                // return to gathering.
                if let Some((prev_slot, jh)) = pending.take() {
                    let r = jh.await;
                    y[prev_slot] = f64::from_bits(r.scalar.unwrap());
                }
                let jh = ctx
                    .vec_async(VecForm::Dot, scratch, layout.values_row(slot), 0, nnz)
                    .unwrap();
                pending = Some((slot, jh));
            }
        }
    }
    if let Some((prev_slot, jh)) = pending.take() {
        let r = jh.await;
        y[prev_slot] = f64::from_bits(r.scalar.unwrap());
    }
    y
}

/// Host driver: distributed y = A·x; returns `(x, y, stats)`.
pub fn distributed_spmv(
    machine: &mut t_series_core::Machine,
    a: &Crs,
    schedule: SpmvSchedule,
    seed: u64,
) -> (Vec<f64>, Vec<f64>, KernelStats) {
    let cube = machine.cube;
    let p = cube.nodes() as usize;
    assert!(a.n.is_multiple_of(p));
    let rows_per = a.n / p;
    let mut st = seed;
    let x: Vec<f64> = (0..a.n).map(|_| rand_f64(&mut st)).collect();

    // Host-side residency: x replicated in bank B; each node's row values
    // packed one memory row per matrix row.
    let layout_rows_a = machine.nodes[0].mem().cfg().rows_a();
    for node in &machine.nodes {
        let mut mem = node.mem_mut();
        for (j, &v) in x.iter().enumerate() {
            mem.write_f64(layout_rows_a * ROW_WORDS + 2 * j, Sf64::from(v))
                .unwrap();
        }
        let me = node.id as usize;
        for slot in 0..rows_per {
            let i = me * rows_per + slot;
            let (lo, hi) = (a.row_ptr[i], a.row_ptr[i + 1]);
            let base = (layout_rows_a + 512 + slot) * ROW_WORDS;
            for (k, idx) in (lo..hi).enumerate() {
                mem.write_f64(base + 2 * k, Sf64::from(a.values[idx]))
                    .unwrap();
            }
        }
    }

    let shared = std::rc::Rc::new(a.clone());
    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            machine
                .handle()
                .spawn(spmv_node(node.ctx(), cube, shared.clone(), schedule))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "spmv deadlocked");
    let elapsed = machine.now().since(t0);
    let mut y = Vec::with_capacity(a.n);
    for jh in handles {
        y.extend(jh.try_take().expect("spmv incomplete"));
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, p as u64);
    (x, y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, n: usize, nnz: usize, schedule: SpmvSchedule) -> KernelStats {
        let a = Crs::random(n, nnz, 5);
        let mut m = Machine::build(MachineCfg::cube(dim));
        let (x, y, stats) = distributed_spmv(&mut m, &a, schedule, 6);
        let want = a.apply(&x);
        for (i, (g, w)) in y.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-10, "y[{i}] = {g}, want {w}");
        }
        stats
    }

    #[test]
    fn spmv_sequential_single_node() {
        check(0, 32, 8, SpmvSchedule::Sequential);
    }

    #[test]
    fn spmv_overlapped_single_node() {
        check(0, 32, 8, SpmvSchedule::Overlapped);
    }

    #[test]
    fn spmv_on_a_square() {
        let s = check(2, 64, 12, SpmvSchedule::Sequential);
        assert!(s.flops > 0);
    }

    #[test]
    fn overlap_helps_but_gather_still_dominates() {
        // Sparse rows carry only ~2 flops per gathered element, far below
        // the 13 the §II rule demands, so even perfect overlap leaves the
        // kernel gather-bound: a small win, nowhere near 2x.
        let a = Crs::random(64, 16, 9);
        let time = |schedule| {
            let mut m = Machine::build(MachineCfg::cube(0));
            let (_, _, stats) = distributed_spmv(&mut m, &a, schedule, 6);
            stats.elapsed.as_secs_f64()
        };
        let seq = time(SpmvSchedule::Sequential);
        let ovl = time(SpmvSchedule::Overlapped);
        assert!(ovl < seq, "overlap must help: {ovl} vs {seq}");
        let speedup = seq / ovl;
        assert!(
            (1.0..1.5).contains(&speedup),
            "gather-bound speedup should be modest: {speedup}"
        );
    }

    #[test]
    fn crs_reference_is_sane() {
        let a = Crs::random(16, 4, 1);
        let x = vec![1.0; 16];
        let y = a.apply(&x);
        assert_eq!(y.len(), 16);
        // Row sums equal the apply-to-ones result by construction.
        for (i, v) in y.iter().enumerate() {
            let want: f64 = (a.row_ptr[i]..a.row_ptr[i + 1]).map(|k| a.values[k]).sum();
            assert!((v - want).abs() < 1e-12);
        }
    }
}
