//! # ts-kernels — the applications the architecture was built for
//!
//! §I of the paper motivates the machine with large scientific
//! applications; §II's balance argument (1 : 13 : 130) and §III's embedding
//! menagerie (Figure 3) only mean something when real algorithms run on the
//! simulated machine. This crate provides distributed kernels, each an SPMD
//! program over [`ts_node::NodeCtx`]:
//!
//! * [`matmul`] — Cannon's algorithm on the 2-D torus embedding
//!   (Gray-coded mesh shifts, local SAXPY-based GEMM);
//! * [`fft`] — radix-2 complex FFT using the dilation-1 butterfly
//!   embedding: high stages exchange across cube dimensions, low stages
//!   are local;
//! * [`lu`] — LU factorization with partial pivoting on row-cyclic
//!   distributed matrices, using the **real node memory**: gather for
//!   column access, the `AbsMax` vector form for pivot search, physical
//!   row moves for the swap (the paper's §II argument), software division
//!   (no divider!), and `Saxpy` vector forms for elimination;
//! * [`sort`] — bitonic sort across the cube (the paper's "sorting
//!   records" use of fast data movement);
//! * [`stencil`] — Jacobi relaxation on the embedded 2-D mesh with halo
//!   exchange;
//! * [`cg`] — conjugate gradients on the five-point Laplacian: halo
//!   exchanges, vector-pipe AXPYs and log-p all-reduce dot products per
//!   iteration;
//! * [`transpose`] — recursive matrix transpose by pairwise block
//!   exchange across cube dimensions;
//! * [`nbody`] — all-pairs N-body on the Gray-code ring (the Fox & Otto
//!   pipeline the paper cites);
//! * [`spmv`] — sparse matrix–vector products driven by the control
//!   processor's gather hardware, with the §II gather/arithmetic overlap
//!   schedule.
//!
//! Every kernel verifies its numerics against a host-side reference and
//! reports a [`KernelStats`] from the machine's metrics, so the benches can
//! plot achieved MFLOPS, speedup and communication share.

#![deny(missing_docs)]

pub mod cg;
pub mod fft;
pub mod lu;
pub mod matmul;
pub mod nbody;
pub mod sort;
pub mod spmv;
pub mod stencil;
pub mod transpose;

use ts_sim::{Dur, Metrics};

/// What a kernel run achieved, derived from machine metrics.
#[derive(Clone, Copy, Debug)]
pub struct KernelStats {
    /// Simulated wall-clock of the run.
    pub elapsed: Dur,
    /// Total floating-point operations performed by the vector units.
    pub flops: u64,
    /// Total bytes sent over hypercube links.
    pub bytes_sent: u64,
    /// Aggregate achieved MFLOPS.
    pub mflops: f64,
    /// Fraction of node-time the vector units were busy (0..=1 per node).
    pub vec_utilization: f64,
}

impl KernelStats {
    /// Derive stats from aggregated machine metrics over `elapsed` time on
    /// `nodes` nodes.
    pub fn from_metrics(metrics: &Metrics, elapsed: Dur, nodes: u64) -> KernelStats {
        let flops = metrics.get("vec.flops");
        let bytes = metrics.get("link.bytes_sent");
        let secs = elapsed.as_secs_f64();
        let vec_busy = metrics.get_time("vec.busy").as_secs_f64();
        KernelStats {
            elapsed,
            flops,
            bytes_sent: bytes,
            mflops: if secs > 0.0 {
                flops as f64 / secs / 1e6
            } else {
                0.0
            },
            vec_utilization: if secs > 0.0 {
                vec_busy / (secs * nodes as f64)
            } else {
                0.0
            },
        }
    }
}

/// Simple splitmix64 PRNG for reproducible test data without threading a
/// rand dependency through every kernel.
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A reproducible pseudo-random f64 in (-1, 1).
pub fn rand_f64(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}
