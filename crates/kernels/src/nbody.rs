//! All-pairs N-body on the embedded ring — the concurrent-processor
//! workload of Fox & Otto, whom the paper cites (refs. 3 and 4) as the
//! algorithmic foundation for machines of this class.
//!
//! Bodies are split evenly over the 2ⁿ nodes arranged as the Gray-code
//! ring (Figure 3). A travelling buffer of bodies circulates the ring for
//! p−1 steps; at each step every node accumulates the forces its resident
//! bodies feel from the visitors, then passes the buffer to its ring
//! successor (one physical hop, dilation 1). Communication is perfectly
//! balanced: every link carries the same traffic at the same time.
//!
//! Forces use a Plummer-softened inverse square law. Arithmetic cost is
//! charged per pair: the r⁻³ factor needs the node's *software*
//! reciprocal-square-root (no divider!), so a pair costs far more than the
//! naive flop count — an honest accounting of 1986 node arithmetic.

use ts_cube::{embed::RingEmbedding, Hypercube};
use ts_fpu::softdiv;
use ts_node::{occam, NodeCtx};

use crate::{rand_f64, KernelStats};

/// A point mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Body {
    /// Position.
    pub x: f64,
    /// Position.
    pub y: f64,
    /// Mass.
    pub m: f64,
}

/// Softening length (Plummer) keeping close encounters finite.
pub const SOFTENING: f64 = 1e-3;

/// Hardware operations charged per interaction pair: subtracts, multiplies
/// and the Newton–Raphson reciprocal square root (r² → r⁻³ path).
pub const FLOPS_PER_PAIR: u64 = 10 + softdiv::SQRT_FLOPS + softdiv::RECIP_FLOPS;

fn pack(bodies: &[Body]) -> Vec<u32> {
    let mut words = Vec::with_capacity(bodies.len() * 6);
    for b in bodies {
        for v in [b.x, b.y, b.m] {
            let bits = v.to_bits();
            words.push(bits as u32);
            words.push((bits >> 32) as u32);
        }
    }
    words
}

fn unpack(words: &[u32]) -> Vec<Body> {
    words
        .chunks_exact(6)
        .map(|c| {
            let f = |i: usize| f64::from_bits(c[2 * i] as u64 | ((c[2 * i + 1] as u64) << 32));
            Body {
                x: f(0),
                y: f(1),
                m: f(2),
            }
        })
        .collect()
}

/// Accumulate the forces `residents` feel from `visitors`.
fn accumulate(residents: &[Body], visitors: &[Body], forces: &mut [(f64, f64)]) {
    for (i, r) in residents.iter().enumerate() {
        for v in visitors {
            let dx = v.x - r.x;
            let dy = v.y - r.y;
            let r2 = dx * dx + dy * dy + SOFTENING * SOFTENING;
            if r2 == 0.0 {
                continue;
            }
            let inv_r = 1.0 / r2.sqrt();
            let f = r.m * v.m * inv_r * inv_r * inv_r;
            forces[i].0 += f * dx;
            forces[i].1 += f * dy;
        }
    }
}

/// The per-node program: returns the total force on each resident body.
pub async fn nbody_node(ctx: NodeCtx, cube: Hypercube, residents: Vec<Body>) -> Vec<(f64, f64)> {
    let ring = RingEmbedding::new(cube);
    let me = ctx.id();
    let next = ring.next(me);
    let prev = ring.prev(me);
    let send_dim = (me ^ next).trailing_zeros() as usize;
    let recv_dim = (me ^ prev).trailing_zeros() as usize;
    let nl = residents.len();

    let mut forces = vec![(0.0, 0.0); nl];
    // Self-interactions (excluding each body with itself).
    for i in 0..nl {
        let mut others = residents.clone();
        others.swap_remove(i);
        accumulate(&residents[i..=i], &others, &mut forces[i..=i]);
    }
    ctx.charge_vec_flops(FLOPS_PER_PAIR * (nl * nl.saturating_sub(1)) as u64)
        .await;

    // Circulate the visitor buffer p−1 steps around the ring.
    let mut visitors = residents.clone();
    for _ in 1..cube.nodes() {
        let h = ctx.handle().clone();
        let tx = ctx.clone();
        let rx = ctx.clone();
        let outgoing = pack(&visitors);
        let (_, incoming) = occam::par2(
            &h,
            async move { tx.send_dim(send_dim, outgoing).await },
            async move { rx.recv_dim(recv_dim).await },
        )
        .await;
        visitors = unpack(&incoming);
        accumulate(&residents, &visitors, &mut forces);
        ctx.charge_vec_flops(FLOPS_PER_PAIR * (nl * visitors.len()) as u64)
            .await;
    }
    forces
}

/// Host driver: total forces for `total` random bodies; returns
/// `(bodies, forces, stats)` in global order.
pub fn distributed_nbody(
    machine: &mut t_series_core::Machine,
    total: usize,
    seed: u64,
) -> (Vec<Body>, Vec<(f64, f64)>, KernelStats) {
    let cube = machine.cube;
    let p = cube.nodes() as usize;
    assert!(total.is_multiple_of(p));
    let nl = total / p;
    let mut st = seed;
    let bodies: Vec<Body> = (0..total)
        .map(|_| Body {
            x: rand_f64(&mut st) * 10.0,
            y: rand_f64(&mut st) * 10.0,
            m: rand_f64(&mut st).abs() + 0.1,
        })
        .collect();

    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            let lo = node.id as usize * nl;
            machine
                .handle()
                .spawn(nbody_node(node.ctx(), cube, bodies[lo..lo + nl].to_vec()))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "n-body deadlocked");
    let elapsed = machine.now().since(t0);
    let mut forces = Vec::with_capacity(total);
    for jh in handles {
        forces.extend(jh.try_take().expect("n-body incomplete"));
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, p as u64);
    (bodies, forces, stats)
}

/// Host reference: direct all-pairs summation.
pub fn reference_forces(bodies: &[Body]) -> Vec<(f64, f64)> {
    let mut out = vec![(0.0, 0.0); bodies.len()];
    for (i, r) in bodies.iter().enumerate() {
        for (j, v) in bodies.iter().enumerate() {
            if i == j {
                continue;
            }
            let dx = v.x - r.x;
            let dy = v.y - r.y;
            let r2 = dx * dx + dy * dy + SOFTENING * SOFTENING;
            let inv_r = 1.0 / r2.sqrt();
            let f = r.m * v.m * inv_r * inv_r * inv_r;
            out[i].0 += f * dx;
            out[i].1 += f * dy;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, total: usize) -> KernelStats {
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (bodies, forces, stats) = distributed_nbody(&mut m, total, 2718);
        let want = reference_forces(&bodies);
        for (i, ((gx, gy), (wx, wy))) in forces.iter().zip(&want).enumerate() {
            // Summation order differs between the ring schedule and the
            // reference loop; allow float reassociation noise.
            assert!(
                (gx - wx).abs() < 1e-9 && (gy - wy).abs() < 1e-9,
                "force[{i}] = ({gx},{gy}), want ({wx},{wy})"
            );
        }
        stats
    }

    #[test]
    fn nbody_single_node() {
        check(0, 16);
    }

    #[test]
    fn nbody_on_a_square() {
        let stats = check(2, 32);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn nbody_on_a_cube() {
        // 8 nodes: the buffer makes 7 hops; traffic is balanced.
        let stats = check(3, 32);
        // Every node sends its 4-body buffer (24 words + ...) 7 times.
        assert_eq!(stats.bytes_sent, 8 * 7 * 4 * 6 * 4);
    }

    #[test]
    fn ring_steps_are_single_hops() {
        // The schedule's communication partner is always one physical hop.
        let cube = ts_cube::Hypercube::new(4);
        let ring = ts_cube::embed::RingEmbedding::new(cube);
        for node in cube.iter() {
            assert_eq!(cube.distance(node, ring.next(node)), 1);
        }
    }

    #[test]
    fn softened_forces_are_finite_for_coincident_bodies() {
        let bodies = vec![
            Body {
                x: 1.0,
                y: 1.0,
                m: 1.0,
            },
            Body {
                x: 1.0,
                y: 1.0,
                m: 2.0,
            },
        ];
        let f = reference_forces(&bodies);
        assert!(f[0].0.is_finite() && f[0].1.is_finite());
    }
}
