//! Distributed matrix transpose — the classic **all-to-all personalized**
//! exchange on the hypercube, in log₂ p steps.
//!
//! Node i holds block-row i of a p×p block matrix (blocks of b×b, N = p·b).
//! At step d every node exchanges, with its dimension-d neighbour, all
//! blocks whose final owner differs in bit d; after log₂ p steps node i
//! holds column-block i, and a local b×b transpose of each block finishes
//! the job. Each step moves exactly half a node's data — the optimal
//! store-and-forward schedule — so total traffic is (p/2)·log₂(p)·b²
//! elements per node.
//!
//! The local block transposes are strided element traffic through the
//! word port, charged at the control processor's gather rate (§II: this
//! is precisely the workload the paper says benefits from *physical* row
//! movement when the stride allows it).

use ts_cube::Hypercube;
use ts_node::{occam, NodeCtx};

use crate::{rand_f64, KernelStats};

fn pack_blocks(blocks: &[(u32, Vec<f64>)]) -> Vec<u32> {
    let mut words = Vec::new();
    for (dest, data) in blocks {
        words.push(*dest);
        words.push(data.len() as u32);
        for v in data {
            let bits = v.to_bits();
            words.push(bits as u32);
            words.push((bits >> 32) as u32);
        }
    }
    words
}

fn unpack_blocks(words: &[u32]) -> Vec<(u32, Vec<f64>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < words.len() {
        let dest = words[i];
        let len = words[i + 1] as usize;
        let mut data = Vec::with_capacity(len);
        for k in 0..len {
            let lo = words[i + 2 + 2 * k] as u64;
            let hi = words[i + 3 + 2 * k] as u64;
            data.push(f64::from_bits(lo | (hi << 32)));
        }
        out.push((dest, data));
        i += 2 + 2 * len;
    }
    out
}

/// Host driver: transpose an N×N matrix (N = p·b); returns `(A, Aᵀ, stats)`.
pub fn distributed_transpose(
    machine: &mut t_series_core::Machine,
    n: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>, KernelStats) {
    let cube = machine.cube;
    let p = cube.nodes() as usize;
    assert!(n.is_multiple_of(p));
    let bsize = n / p;
    let mut st = seed;
    let a: Vec<f64> = (0..n * n).map(|_| rand_f64(&mut st)).collect();

    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            let i = node.id as usize;
            // blocks[j] = block (i, j), b×b row-major.
            let blocks: Vec<Vec<f64>> = (0..p)
                .map(|j| {
                    let mut blk = Vec::with_capacity(bsize * bsize);
                    for r in 0..bsize {
                        for c in 0..bsize {
                            blk.push(a[(i * bsize + r) * n + j * bsize + c]);
                        }
                    }
                    blk
                })
                .collect();
            machine
                .handle()
                .spawn(transpose_rows(node.ctx(), cube, bsize, blocks))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "transpose deadlocked");
    let elapsed = machine.now().since(t0);

    let mut at = vec![0.0; n * n];
    for (node, jh) in machine.nodes.iter().zip(handles) {
        let i = node.id as usize;
        let row_blocks = jh.try_take().expect("transpose incomplete");
        for (j, blk) in row_blocks.into_iter().enumerate() {
            for r in 0..bsize {
                for c in 0..bsize {
                    at[(i * bsize + r) * n + j * bsize + c] = blk[r * bsize + c];
                }
            }
        }
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, p as u64);
    (a, at, stats)
}

/// The working per-node program: blocks tagged `(row, col)` so ownership
/// and placement survive the exchange.
pub async fn transpose_rows(
    ctx: NodeCtx,
    cube: Hypercube,
    bsize: usize,
    blocks: Vec<Vec<f64>>,
) -> Vec<Vec<f64>> {
    let me = ctx.id();
    let p = cube.nodes();
    // Tag: (final_owner = original column, original row, data).
    let mut holding: Vec<(u32, u32, Vec<f64>)> = blocks
        .into_iter()
        .enumerate()
        .map(|(j, d)| (j as u32, me, d))
        .collect();
    for d in 0..cube.dim() as usize {
        let bit = 1u32 << d;
        let (send, keep): (Vec<_>, Vec<_>) = holding
            .into_iter()
            .partition(|(owner, _, _)| (owner & bit) != (me & bit));
        // Flatten with both tags.
        let tagged: Vec<(u32, Vec<f64>)> = send
            .into_iter()
            .map(|(owner, row, data)| (owner | (row << 16), data))
            .collect();
        let h = ctx.handle().clone();
        let tx = ctx.clone();
        let rx = ctx.clone();
        let payload = pack_blocks(&tagged);
        let (_, incoming) = occam::par2(
            &h,
            async move { tx.send_dim(d, payload).await },
            async move { rx.recv_dim(d).await },
        )
        .await;
        holding = keep;
        for (tag, data) in unpack_blocks(&incoming) {
            holding.push((tag & 0xffff, tag >> 16, data));
        }
    }
    // Local transposes: strided element traffic through the word port.
    ctx.cp_compute(12 * (p as u64) * (bsize * bsize) as u64)
        .await;
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p as usize];
    for (owner, row, data) in holding {
        debug_assert_eq!(owner, me);
        let mut t = vec![0.0; bsize * bsize];
        for r in 0..bsize {
            for c in 0..bsize {
                t[c * bsize + r] = data[r * bsize + c];
            }
        }
        out[row as usize] = t;
    }
    out
}

/// Host reference transpose.
pub fn reference_transpose(n: usize, a: &[f64]) -> Vec<f64> {
    let mut t = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            t[j * n + i] = a[i * n + j];
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, n: usize) -> KernelStats {
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (a, at, stats) = distributed_transpose(&mut m, n, 13);
        assert_eq!(at, reference_transpose(n, &a), "dim {dim}, n {n}");
        stats
    }

    #[test]
    fn transpose_single_node() {
        check(0, 8);
    }

    #[test]
    fn transpose_on_a_line() {
        let stats = check(1, 8);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn transpose_on_a_cube() {
        check(3, 16);
    }

    #[test]
    fn traffic_is_half_data_per_step() {
        // 8 nodes, N=16, b=2: each node holds 8 blocks of 32 bytes; each of
        // 3 steps sends half its 8 blocks (4 blocks + 8 tag/len words).
        let stats = check(3, 16);
        let per_block_bytes = (2 + 2 * 4) * 4; // tag + len + 4 f64 = 40 B
        let want = 8 * 3 * 4 * per_block_bytes as u64;
        assert_eq!(stats.bytes_sent, want);
    }
}
