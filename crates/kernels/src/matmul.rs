//! Distributed matrix multiplication: Cannon's algorithm on the 2-D torus
//! embedding (Figure 3's mesh, with the wrap edges the cyclic Gray code
//! provides).
//!
//! The machine's 2ⁿ nodes form an s × s torus (s = 2^(n/2)); each node owns
//! b × b blocks of A, B and C (b = N/s). After the initial skew (block row
//! r of A shifted r positions left, block column c of B shifted c up),
//! every step multiplies the resident blocks — b² chained SAXPY vector
//! forms of length b — and shifts A left, B up by one torus position. All
//! shifts are single cube hops because the embedding is dilation-1.

use ts_cube::{embed::MeshEmbedding, Hypercube};
use ts_fpu::Sf64;
use ts_node::{occam, NodeCtx};

use crate::{rand_f64, KernelStats};

/// The SPMD torus geometry of one node.
struct TorusPos {
    mesh: MeshEmbedding,
    /// My (col, row) coordinate.
    coords: Vec<u32>,
}

impl TorusPos {
    fn new(cube: Hypercube, me: u32) -> TorusPos {
        let half = cube.dim() / 2;
        let mesh = MeshEmbedding::new(cube, &[half, half]);
        let coords = mesh.coords_of(me);
        TorusPos { mesh, coords }
    }

    fn side(&self) -> u32 {
        self.mesh.side(0)
    }

    /// The cube dimension crossed when stepping along `axis` (wrapping).
    fn step_dim(&self, me: u32, axis: usize, forward: bool) -> usize {
        let nb = self
            .mesh
            .node_at(&self.mesh.step_wrap(&self.coords, axis, forward));
        (me ^ nb).trailing_zeros() as usize
    }
}

/// One torus shift: send my block one step along `axis` (backward =
/// "left"/"up"), receive the neighbour's from the other side.
async fn shift(ctx: &NodeCtx, pos: &TorusPos, axis: usize, block: Vec<Sf64>) -> Vec<Sf64> {
    let me = ctx.id();
    let send_dim = pos.step_dim(me, axis, false);
    let recv_dim = pos.step_dim(me, axis, true);
    let h = ctx.handle().clone();
    let tx = ctx.clone();
    let rx = ctx.clone();
    let (_, incoming) = occam::par2(
        &h,
        async move {
            tx.send_f64s(send_dim, &block).await;
            ts_node::recycle_values(block);
        },
        async move { rx.recv_f64s(recv_dim).await },
    )
    .await;
    incoming
}

/// Local GEMM: `c += a · b` on b×b row-major blocks, as b² chained SAXPY
/// vector forms (`C[i,:] += A[i,k] · B[k,:]`).
async fn local_gemm(ctx: &NodeCtx, bsize: usize, a: &[Sf64], b: &[Sf64], c: &mut [Sf64]) {
    for i in 0..bsize {
        for k in 0..bsize {
            let aik = a[i * bsize + k];
            let brow = &b[k * bsize..(k + 1) * bsize];
            let crow = &mut c[i * bsize..(i + 1) * bsize];
            ctx.saxpy_values(aik, brow, crow).await;
        }
    }
}

/// The per-node Cannon program: returns this node's C block.
pub async fn cannon_node(
    ctx: NodeCtx,
    cube: Hypercube,
    bsize: usize,
    mut a: Vec<Sf64>,
    mut b: Vec<Sf64>,
) -> Vec<Sf64> {
    let pos = TorusPos::new(cube, ctx.id());
    let s = pos.side();
    let (col, row) = (pos.coords[0], pos.coords[1]);
    // Initial skew: A moves `row` steps left (axis 0), B `col` steps up
    // (axis 1). Unit steps keep every hop on a physical cube edge.
    for _ in 0..row {
        a = shift(&ctx, &pos, 0, a).await;
    }
    for _ in 0..col {
        b = shift(&ctx, &pos, 1, b).await;
    }
    let mut c = vec![Sf64::ZERO; bsize * bsize];
    for step in 0..s {
        local_gemm(&ctx, bsize, &a, &b, &mut c).await;
        if step + 1 < s {
            a = shift(&ctx, &pos, 0, a).await;
            b = shift(&ctx, &pos, 1, b).await;
        }
    }
    c
}

/// Host-side driver: generate N×N matrices, run Cannon on `machine`,
/// return (A, B, C) as host row-major matrices plus the run's stats.
pub fn distributed_matmul(
    machine: &mut t_series_core::Machine,
    n: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, KernelStats) {
    let cube = machine.cube;
    assert!(
        cube.dim().is_multiple_of(2),
        "Cannon needs a square torus (even cube dimension)"
    );
    let s = 1usize << (cube.dim() / 2);
    assert!(
        n.is_multiple_of(s),
        "matrix size must divide the torus side"
    );
    let bsize = n / s;

    let mut st = seed;
    let a: Vec<f64> = (0..n * n).map(|_| rand_f64(&mut st)).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rand_f64(&mut st)).collect();

    // Cut blocks.
    let block_of = |m: &[f64], br: usize, bc: usize| -> Vec<Sf64> {
        let mut out = Vec::with_capacity(bsize * bsize);
        for i in 0..bsize {
            for j in 0..bsize {
                out.push(Sf64::from(m[(br * bsize + i) * n + bc * bsize + j]));
            }
        }
        out
    };
    let mesh = MeshEmbedding::new(cube, &[cube.dim() / 2, cube.dim() / 2]);

    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            let ctx = node.ctx();
            let coords = mesh.coords_of(node.id);
            let (bc, br) = (coords[0] as usize, coords[1] as usize);
            let ab = block_of(&a, br, bc);
            let bb = block_of(&b, br, bc);
            let h = machine.handle();
            h.spawn(cannon_node(ctx, cube, bsize, ab, bb))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "Cannon deadlocked");
    let elapsed = machine.now().since(t0);

    // Reassemble C.
    let mut c = vec![0.0f64; n * n];
    for (node, jh) in machine.nodes.iter().zip(handles) {
        let cb = jh.try_take().expect("node program incomplete");
        let coords = mesh.coords_of(node.id);
        let (bc, br) = (coords[0] as usize, coords[1] as usize);
        for i in 0..bsize {
            for j in 0..bsize {
                c[(br * bsize + i) * n + bc * bsize + j] = cb[i * bsize + j].to_host();
            }
        }
    }
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, cube.nodes() as u64);
    (a, b, c, stats)
}

/// Host reference multiply for verification.
pub fn reference_matmul(n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, n: usize) -> KernelStats {
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (a, b, c, stats) = distributed_matmul(&mut m, n, 42);
        let want = reference_matmul(n, &a, &b);
        for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
            assert!(
                (got - w).abs() <= 1e-12 * w.abs().max(1.0),
                "C[{i}] = {got}, want {w} (dim {dim}, n {n})"
            );
        }
        stats
    }

    #[test]
    fn cannon_2x2_torus() {
        let stats = check(2, 8);
        assert!(stats.flops > 0);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn cannon_4x4_torus() {
        let stats = check(4, 16);
        // 2·N³ useful flops plus nothing wasted: Cannon does exactly that.
        assert_eq!(stats.flops, 2 * 16 * 16 * 16);
    }

    #[test]
    fn cannon_single_node_degenerate() {
        let stats = check(0, 8);
        assert_eq!(stats.bytes_sent, 0, "no communication on a point machine");
    }

    #[test]
    fn bigger_matrices_run_closer_to_peak() {
        let small = check(2, 8);
        let large = check(2, 32);
        assert!(
            large.mflops > small.mflops,
            "large {} vs small {}",
            large.mflops,
            small.mflops
        );
    }
}
