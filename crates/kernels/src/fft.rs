//! Distributed radix-2 complex FFT on the hypercube butterfly embedding.
//!
//! Figure 3 lists "FFT butterfly connections of radix 2" among the cube's
//! embeddings: at stage s the butterfly pairs points whose indices differ
//! in bit s — under the identity placement that is exactly one cube edge
//! (`ts_cube::embed::FftEmbedding` proves dilation 1).
//!
//! With N points over p = 2ⁿ nodes (N/p consecutive points per node, N/p a
//! power of two), a decimation-in-frequency FFT runs its first n stages
//! **across nodes** — each node exchanges its whole block with the partner
//! across one cube dimension and keeps its half of every butterfly — and
//! the remaining log₂(N/p) stages locally. Output lands in bit-reversed
//! order, as DIF always does; [`bit_reverse_permute`] restores natural
//! order host-side.
//!
//! Arithmetic is complex `Sf64` (the machine's 64-bit mode) and each
//! butterfly charges the vector units 10 hardware flops.

use ts_cube::Hypercube;
use ts_fpu::Sf64;
use ts_node::{occam, NodeCtx};

use crate::KernelStats;

/// A complex value in the machine's 64-bit arithmetic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cpx {
    /// Real part.
    pub re: Sf64,
    /// Imaginary part.
    pub im: Sf64,
}

impl Cpx {
    /// Construct from host floats.
    pub fn new(re: f64, im: f64) -> Cpx {
        Cpx {
            re: Sf64::from(re),
            im: Sf64::from(im),
        }
    }

    /// Host-side view.
    pub fn to_host(self) -> (f64, f64) {
        (self.re.to_host(), self.im.to_host())
    }
}

impl std::ops::Add for Cpx {
    type Output = Cpx;
    /// Complex addition (2 flops).
    fn add(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl std::ops::Sub for Cpx {
    type Output = Cpx;
    /// Complex subtraction (2 flops).
    fn sub(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl std::ops::Mul for Cpx {
    type Output = Cpx;
    /// Complex multiplication (6 flops).
    fn mul(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// Twiddle factor e^(−iπ·k/span) (the machine would hold these in a
/// precomputed table; the host computes them, the node stores `Sf64`s).
fn twiddle(k: usize, span: usize) -> Cpx {
    let angle = -std::f64::consts::PI * k as f64 / span as f64;
    Cpx::new(angle.cos(), angle.sin())
}

/// Hardware flops charged per butterfly (complex add + sub + mul).
pub const FLOPS_PER_BUTTERFLY: u64 = 10;

fn pack(data: &[Cpx]) -> Vec<u32> {
    let mut words = ts_sim::pool::take_words(data.len() * 4);
    for c in data {
        for bits in [c.re.to_bits(), c.im.to_bits()] {
            words.push(bits as u32);
            words.push((bits >> 32) as u32);
        }
    }
    words
}

fn unpack(words: &[u32]) -> Vec<Cpx> {
    words
        .chunks_exact(4)
        .map(|c| Cpx {
            re: Sf64::from_bits(c[0] as u64 | ((c[1] as u64) << 32)),
            im: Sf64::from_bits(c[2] as u64 | ((c[3] as u64) << 32)),
        })
        .collect()
}

/// The per-node DIF FFT program over `local` points (global index =
/// `id · local.len() + j`). Returns this node's slice of the bit-reversed-
/// order spectrum.
pub async fn fft_node(
    ctx: NodeCtx,
    cube: Hypercube,
    total: usize,
    mut local: Vec<Cpx>,
) -> Vec<Cpx> {
    let nl = local.len();
    assert!(nl.is_power_of_two() && total == nl << cube.dim() as usize);
    let me = ctx.id() as usize;
    let mut span = total / 2;
    // Cross-node stages: span ≥ nl.
    while span >= nl {
        let pdim = (span / nl).trailing_zeros() as usize;
        let low_side = me & (span / nl) == 0;
        // Full-block exchange with the butterfly partner.
        let h = ctx.handle().clone();
        let tx = ctx.clone();
        let rx = ctx.clone();
        let outgoing = pack(&local);
        let (_, words) = occam::par2(
            &h,
            async move { tx.send_dim(pdim, outgoing).await },
            async move { rx.recv_dim(pdim).await },
        )
        .await;
        let theirs = unpack(&words);
        ts_sim::pool::put_words(words);
        for j in 0..nl {
            let (a, b) = if low_side {
                (local[j], theirs[j])
            } else {
                (theirs[j], local[j])
            };
            if low_side {
                local[j] = a + b;
            } else {
                // Twiddle index: the low global index mod span.
                let g_low = (me & !(span / nl)) * nl + j;
                local[j] = (a - b) * twiddle(g_low % span, span);
            }
        }
        ctx.charge_vec_flops(FLOPS_PER_BUTTERFLY * nl as u64).await;
        span /= 2;
    }
    // Local stages.
    while span >= 1 {
        let base = me * nl;
        let mut start = 0;
        while start < nl {
            for off in 0..span {
                let i = start + off;
                let j = i + span;
                let (a, b) = (local[i], local[j]);
                local[i] = a + b;
                local[j] = (a - b) * twiddle((base + i) % span.max(1), span);
            }
            start += 2 * span;
        }
        ctx.charge_vec_flops(FLOPS_PER_BUTTERFLY * (nl as u64 / 2))
            .await;
        span /= 2;
    }
    local
}

/// Reverse the lowest `bits` bits of `v`.
pub fn bit_reverse(v: usize, bits: u32) -> usize {
    (v.reverse_bits() >> (usize::BITS - bits)) & ((1 << bits) - 1)
}

/// Reorder a bit-reversed spectrum into natural order (host side).
pub fn bit_reverse_permute<T: Copy>(data: &[T]) -> Vec<T> {
    let bits = data.len().trailing_zeros();
    let mut out = data.to_vec();
    for (i, &v) in data.iter().enumerate() {
        out[bit_reverse(i, bits)] = v;
    }
    out
}

/// Host driver: FFT of `input` (length N = 2^k · p) on the machine;
/// returns the natural-order spectrum and the run's stats.
pub fn distributed_fft(
    machine: &mut t_series_core::Machine,
    input: &[(f64, f64)],
) -> (Vec<(f64, f64)>, KernelStats) {
    let cube = machine.cube;
    let p = cube.nodes() as usize;
    let total = input.len();
    assert!(total.is_power_of_two() && total >= 2 * p);
    let nl = total / p;
    let t0 = machine.now();
    let handles: Vec<_> = machine
        .nodes
        .iter()
        .map(|node| {
            let ctx = node.ctx();
            let lo = node.id as usize * nl;
            let local: Vec<Cpx> = input[lo..lo + nl]
                .iter()
                .map(|&(re, im)| Cpx::new(re, im))
                .collect();
            machine.handle().spawn(fft_node(ctx, cube, total, local))
        })
        .collect();
    let report = machine.run();
    assert!(report.quiescent, "FFT deadlocked");
    let elapsed = machine.now().since(t0);
    let mut flat = Vec::with_capacity(total);
    for jh in handles {
        flat.extend(
            jh.try_take()
                .expect("fft incomplete")
                .into_iter()
                .map(Cpx::to_host),
        );
    }
    let natural = bit_reverse_permute(&flat);
    let stats = KernelStats::from_metrics(&machine.metrics(), elapsed, p as u64);
    (natural, stats)
}

/// Naive host DFT for verification.
pub fn reference_dft(input: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (j, &(xr, xi)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                re += xr * c - xi * s;
                im += xr * s + xi * c;
            }
            (re, im)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_f64;
    use t_series_core::{Machine, MachineCfg};

    fn check(dim: u32, total: usize) -> KernelStats {
        let mut st = 7u64;
        let input: Vec<(f64, f64)> = (0..total)
            .map(|_| (rand_f64(&mut st), rand_f64(&mut st)))
            .collect();
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let (got, stats) = distributed_fft(&mut m, &input);
        let want = reference_dft(&input);
        for (i, (&(gr, gi), &(wr, wi))) in got.iter().zip(&want).enumerate() {
            assert!(
                (gr - wr).abs() < 1e-9 * (total as f64) && (gi - wi).abs() < 1e-9 * (total as f64),
                "X[{i}] = ({gr},{gi}), want ({wr},{wi}) [dim {dim}, N {total}]"
            );
        }
        stats
    }

    #[test]
    fn fft_on_a_point() {
        check(0, 16);
    }

    #[test]
    fn fft_on_a_square() {
        let stats = check(2, 32);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn fft_on_a_cube_3d() {
        let stats = check(3, 64);
        // n stages cross-node: each node sends its block once per stage.
        // 8 nodes × 3 stages × 8 points × 16 bytes.
        assert_eq!(stats.bytes_sent, 8 * 3 * 8 * 16);
    }

    #[test]
    fn bit_reversal_is_involution() {
        for bits in 1..10u32 {
            for v in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(v, bits), bits), v);
            }
        }
        let data: Vec<usize> = (0..16).collect();
        assert_eq!(bit_reverse_permute(&bit_reverse_permute(&data)), data);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut input = vec![(0.0, 0.0); 64];
        input[0] = (1.0, 0.0);
        let mut m = Machine::build(MachineCfg::cube_small_mem(2, 8));
        let (got, _) = distributed_fft(&mut m, &input);
        for &(re, im) in &got {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }
}
