//! Instruction encoding: the stack machine's direct functions and operations.
//!
//! Every instruction is one byte: a 4-bit **function** and a 4-bit
//! **data** nibble. The data nibble loads into the operand register
//! (`Oreg`); `pfix`/`nfix` shift it up so operands of any size build up a
//! nibble at a time — the paper's "variable operand sizes". `opr` executes
//! the operation selected by `Oreg`, so the secondary instruction set is
//! open-ended.

use ts_sim::Dur;

/// One processor cycle. The paper's 7.5 MIPS with a predominantly
/// 2-cycle instruction mix implies a 15 MHz clock: 66.667 ns ≈ 66 667 ps.
pub const CP_CYCLE: Dur = Dur::ps(66_667);

/// The sixteen direct functions (the 4-bit primary opcodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Direct {
    /// Unconditional relative jump.
    J = 0x0,
    /// Load local pointer: A = Wptr + Oreg (word address).
    Ldlp = 0x1,
    /// Prefix: Oreg = (Oreg | data) << 4.
    Pfix = 0x2,
    /// Load non-local: `A = mem[A + Oreg]`.
    Ldnl = 0x3,
    /// Load constant: push Oreg.
    Ldc = 0x4,
    /// Load non-local pointer: A = A + Oreg.
    Ldnlp = 0x5,
    /// Negative prefix: Oreg = (~(Oreg | data)) << 4.
    Nfix = 0x6,
    /// Load local: push `mem[Wptr + Oreg]`.
    Ldl = 0x7,
    /// Add constant: A += Oreg.
    Adc = 0x8,
    /// Call: push Iptr into workspace, jump relative.
    Call = 0x9,
    /// Conditional jump: if A == 0 jump (and pop); else pop.
    Cj = 0xa,
    /// Adjust workspace: Wptr += Oreg.
    Ajw = 0xb,
    /// Equals constant: A = (A == Oreg).
    Eqc = 0xc,
    /// Store local: `mem[Wptr + Oreg] = pop`.
    Stl = 0xd,
    /// Store non-local: `mem[pop] = pop`.
    Stnl = 0xe,
    /// Operate: execute the operation selected by Oreg.
    Opr = 0xf,
}

impl Direct {
    /// Decode the function nibble.
    pub fn from_nibble(n: u8) -> Direct {
        match n & 0xf {
            0x0 => Direct::J,
            0x1 => Direct::Ldlp,
            0x2 => Direct::Pfix,
            0x3 => Direct::Ldnl,
            0x4 => Direct::Ldc,
            0x5 => Direct::Ldnlp,
            0x6 => Direct::Nfix,
            0x7 => Direct::Ldl,
            0x8 => Direct::Adc,
            0x9 => Direct::Call,
            0xa => Direct::Cj,
            0xb => Direct::Ajw,
            0xc => Direct::Eqc,
            0xd => Direct::Stl,
            0xe => Direct::Stnl,
            _ => Direct::Opr,
        }
    }
}

/// Secondary operations (selected by `Oreg` when executing [`Direct::Opr`]).
///
/// Numbering is ours (the paper does not publish one); names and semantics
/// follow the classic stack-machine set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Swap A and B.
    Rev = 0x00,
    /// A = B + A.
    Add = 0x01,
    /// A = B − A.
    Sub = 0x02,
    /// A = B · A (32-bit wrapping).
    Mul = 0x03,
    /// A = B / A (signed; yields error on 0).
    Div = 0x04,
    /// A = B mod A.
    Rem = 0x05,
    /// Bitwise and.
    And = 0x06,
    /// Bitwise or.
    Or = 0x07,
    /// Bitwise xor.
    Xor = 0x08,
    /// Bitwise complement of A.
    Not = 0x09,
    /// A = B << A.
    Shl = 0x0a,
    /// A = B >> A (logical).
    Shr = 0x0b,
    /// A = (B > A), signed.
    Gt = 0x0c,
    /// A = B − A with no stack pop of C (pointer difference).
    Diff = 0x0d,
    /// A = B + A unsigned with carry discarded (pointer sum).
    Sum = 0x0e,
    /// Duplicate A.
    Dup = 0x0f,
    /// Pop A.
    Pop = 0x10,
    /// Word subscript: A = B + 4·A (byte address arithmetic).
    Wsub = 0x11,
    /// Minimum integer: push i32::MIN.
    Mint = 0x12,
    /// Return from call.
    Ret = 0x13,
    /// Loop end: decrement the counter at `mem[B]`; jump back by A while > 0.
    Lend = 0x14,
    /// Channel input: receive `A` words into pointer `B` from channel `C`.
    In = 0x15,
    /// Channel output: send `A` words from pointer `B` to channel `C`.
    Out = 0x16,
    /// Issue a vector form to the arithmetic controller; A points at a
    /// 4-word descriptor (form, x_row, y_row, z_row) and B holds n.
    VecOp = 0x17,
    /// Stop the processor (end of program).
    Halt = 0x18,
}

impl Op {
    /// Decode an operation number.
    pub fn from_u32(v: u32) -> Option<Op> {
        use Op::*;
        Some(match v {
            0x00 => Rev,
            0x01 => Add,
            0x02 => Sub,
            0x03 => Mul,
            0x04 => Div,
            0x05 => Rem,
            0x06 => And,
            0x07 => Or,
            0x08 => Xor,
            0x09 => Not,
            0x0a => Shl,
            0x0b => Shr,
            0x0c => Gt,
            0x0d => Diff,
            0x0e => Sum,
            0x0f => Dup,
            0x10 => Pop,
            0x11 => Wsub,
            0x12 => Mint,
            0x13 => Ret,
            0x14 => Lend,
            0x15 => In,
            0x16 => Out,
            0x17 => VecOp,
            0x18 => Halt,
            _ => return None,
        })
    }

    /// Processor cycles consumed by the operation (beyond the 1-cycle
    /// fetch/decode). Calibrated to the published machine character:
    /// multiply and divide are many-cycle, memory-free ALU ops are 1.
    pub fn cycles(self) -> u64 {
        use Op::*;
        match self {
            Mul => 26,
            Div | Rem => 39,
            Lend => 5,
            In | Out => 10, // channel setup before the DMA engine takes over
            VecOp => 8,     // write descriptor to the arithmetic controller
            Ret => 3,
            _ => 1,
        }
    }
}

/// Cycles for a direct function (beyond fetch/decode), given whether the
/// touched memory is the on-chip 2 KB (single cycle) or off-chip DRAM
/// (the paper's 3-cycle minimum; 6 cycles ≈ 400 ns for a random DRAM word).
pub fn direct_cycles(d: Direct, on_chip: bool) -> u64 {
    let mem = if on_chip { 1 } else { 6 };
    match d {
        Direct::Ldl | Direct::Stl | Direct::Ldnl | Direct::Stnl => mem,
        Direct::Call => 4,
        Direct::J | Direct::Cj => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_roundtrip() {
        for n in 0..16u8 {
            assert_eq!(Direct::from_nibble(n) as u8, n);
        }
    }

    #[test]
    fn op_roundtrip() {
        for v in 0..=0x18u32 {
            let op = Op::from_u32(v).unwrap();
            assert_eq!(op as u32, v);
        }
        assert_eq!(Op::from_u32(0x99), None);
    }

    #[test]
    fn cycle_calibration() {
        // 15 MHz clock: 2 cycles ≈ 133 ns → 7.5 MIPS.
        let two = CP_CYCLE * 2;
        let mips = 1.0 / (two.as_secs_f64() * 1e6);
        assert!((mips - 7.5).abs() < 0.01, "{mips}");
        // Off-chip access ≈ 400 ns: 6 cycles.
        let access = CP_CYCLE * 6;
        assert!((access.as_secs_f64() * 1e9 - 400.0).abs() < 1.0);
        // Multiply and divide are long operations.
        assert!(Op::Mul.cycles() > 20);
        assert!(Op::Div.cycles() > Op::Mul.cycles());
    }
}
