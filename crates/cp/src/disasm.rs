//! Disassembler: byte code back to readable mnemonics.
//!
//! `pfix`/`nfix` chains are folded into the operand of the instruction they
//! prefix, so `disassemble(assemble(src))` produces one line per logical
//! instruction — the property test pins the round-trip against the
//! assembler for arbitrary operand values.

use crate::isa::{Direct, Op};

/// One decoded instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decoded {
    /// Byte offset of the first (prefix) byte.
    pub offset: usize,
    /// Encoded length in bytes (prefixes included).
    pub len: usize,
    /// The operation, with its full operand.
    pub insn: Insn,
}

/// A logical instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Insn {
    /// A direct function with its (prefix-folded) operand.
    DirectFn(Direct, i32),
    /// A secondary operation (`opr` with a recognized selector).
    Operation(Op),
    /// An `opr` whose selector names no known operation.
    UnknownOp(u32),
}

impl std::fmt::Display for Insn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Insn::DirectFn(d, operand) => {
                let name = match d {
                    Direct::J => "j",
                    Direct::Ldlp => "ldlp",
                    Direct::Pfix => "pfix",
                    Direct::Ldnl => "ldnl",
                    Direct::Ldc => "ldc",
                    Direct::Ldnlp => "ldnlp",
                    Direct::Nfix => "nfix",
                    Direct::Ldl => "ldl",
                    Direct::Adc => "adc",
                    Direct::Call => "call",
                    Direct::Cj => "cj",
                    Direct::Ajw => "ajw",
                    Direct::Eqc => "eqc",
                    Direct::Stl => "stl",
                    Direct::Stnl => "stnl",
                    Direct::Opr => "opr",
                };
                write!(f, "{name} {operand}")
            }
            Insn::Operation(op) => {
                let name = match op {
                    Op::Rev => "rev",
                    Op::Add => "add",
                    Op::Sub => "sub",
                    Op::Mul => "mul",
                    Op::Div => "div",
                    Op::Rem => "rem",
                    Op::And => "and",
                    Op::Or => "or",
                    Op::Xor => "xor",
                    Op::Not => "not",
                    Op::Shl => "shl",
                    Op::Shr => "shr",
                    Op::Gt => "gt",
                    Op::Diff => "diff",
                    Op::Sum => "sum",
                    Op::Dup => "dup",
                    Op::Pop => "pop",
                    Op::Wsub => "wsub",
                    Op::Mint => "mint",
                    Op::Ret => "ret",
                    Op::Lend => "lend",
                    Op::In => "in",
                    Op::Out => "out",
                    Op::VecOp => "vecop",
                    Op::Halt => "halt",
                };
                write!(f, "{name}")
            }
            Insn::UnknownOp(code) => write!(f, "opr {code:#x} ; unknown"),
        }
    }
}

/// Decode a byte stream into logical instructions (prefixes folded).
pub fn disassemble(code: &[u8]) -> Vec<Decoded> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let start = i;
        let mut oreg: u32 = 0;
        loop {
            let byte = code[i];
            i += 1;
            let d = Direct::from_nibble(byte >> 4);
            let data = (byte & 0xf) as u32;
            match d {
                Direct::Pfix => {
                    oreg = (oreg | data) << 4;
                    if i >= code.len() {
                        // Truncated prefix chain: emit as-is.
                        out.push(Decoded {
                            offset: start,
                            len: i - start,
                            insn: Insn::DirectFn(Direct::Pfix, data as i32),
                        });
                        break;
                    }
                }
                Direct::Nfix => {
                    oreg = !(oreg | data) << 4;
                    if i >= code.len() {
                        out.push(Decoded {
                            offset: start,
                            len: i - start,
                            insn: Insn::DirectFn(Direct::Nfix, data as i32),
                        });
                        break;
                    }
                }
                Direct::Opr => {
                    let code_sel = oreg | data;
                    let insn = match Op::from_u32(code_sel) {
                        Some(op) => Insn::Operation(op),
                        None => Insn::UnknownOp(code_sel),
                    };
                    out.push(Decoded {
                        offset: start,
                        len: i - start,
                        insn,
                    });
                    break;
                }
                other => {
                    let operand = (oreg | data) as i32;
                    out.push(Decoded {
                        offset: start,
                        len: i - start,
                        insn: Insn::DirectFn(other, operand),
                    });
                    break;
                }
            }
        }
    }
    out
}

/// Render a full listing with offsets.
pub fn listing(code: &[u8]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for d in disassemble(code) {
        let _ = writeln!(out, "{:06x}  {}", d.offset, d.insn);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{assemble, encode_direct};

    #[test]
    fn simple_listing() {
        let code = assemble("ldc 5\nstl 0\nadd\nhalt\n").unwrap();
        let text = listing(&code);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "000000  ldc 5");
        assert_eq!(lines[1], "000000  stl 0".replace("000000", "000001"));
        assert!(lines[2].ends_with("add"));
        assert!(lines[3].ends_with("halt"));
    }

    #[test]
    fn prefix_chains_fold() {
        let code = assemble("ldc 1000000\nldc -12345\nhalt\n").unwrap();
        let insns = disassemble(&code);
        assert_eq!(insns[0].insn, Insn::DirectFn(crate::Direct::Ldc, 1_000_000));
        assert_eq!(insns[1].insn, Insn::DirectFn(crate::Direct::Ldc, -12_345));
        assert_eq!(insns[2].insn, Insn::Operation(crate::Op::Halt));
        // Offsets and lengths tile the byte stream.
        let mut cursor = 0;
        for d in &insns {
            assert_eq!(d.offset, cursor);
            cursor += d.len;
        }
        assert_eq!(cursor, code.len());
    }

    #[test]
    fn unknown_op_marked() {
        let mut bytes = Vec::new();
        encode_direct(crate::Direct::Opr, 0x55, &mut bytes);
        let insns = disassemble(&bytes);
        assert_eq!(insns[0].insn, Insn::UnknownOp(0x55));
        assert!(listing(&bytes).contains("unknown"));
    }

    #[test]
    fn roundtrip_reassembles_identically() {
        // Disassemble a program, re-assemble the listing (minus offsets),
        // and the bytes must match — mnemonics and operands are faithful.
        let src = "ldc 300\nstl 2\nldl 2\nadc -17\nstl 3\nldc 0\ncj 4\nmul\nhalt\n";
        let code = assemble(src).unwrap();
        let text: String = disassemble(&code)
            .iter()
            .map(|d| format!("{}\n", d.insn))
            .collect();
        let code2 = assemble(&text).unwrap();
        assert_eq!(code, code2);
    }
}
