//! The control-processor emulator.
//!
//! Executes the byte-coded stack ISA against a [`CpBus`] (the node adapts
//! its dual-ported memory; tests use a plain vector). Channel and
//! vector-unit instructions **yield** a [`CpEvent`] instead of performing
//! I/O — the embedding layer runs the link protocol or the vector form,
//! charges simulated time, and resumes the processor. The emulator counts
//! processor cycles so the embedding layer can charge `cycles ×`
//! [`CP_CYCLE`](crate::isa::CP_CYCLE).

use crate::isa::{direct_cycles, Direct, Op};

/// Memory interface the processor executes against. Addresses are 32-bit
/// **word** addresses; code is fetched byte-wise from the same space.
pub trait CpBus {
    /// Read a 32-bit word.
    fn read(&mut self, word_addr: u32) -> Result<u32, CpError>;
    /// Write a 32-bit word.
    fn write(&mut self, word_addr: u32, value: u32) -> Result<(), CpError>;

    /// Fetch one code byte (little-endian lanes within each word).
    fn fetch_byte(&mut self, byte_addr: u32) -> Result<u8, CpError> {
        let w = self.read(byte_addr / 4)?;
        Ok((w >> (8 * (byte_addr % 4))) as u8)
    }
}

impl CpBus for Vec<u32> {
    fn read(&mut self, word_addr: u32) -> Result<u32, CpError> {
        self.get(word_addr as usize)
            .copied()
            .ok_or(CpError::Bus { addr: word_addr })
    }

    fn write(&mut self, word_addr: u32, value: u32) -> Result<(), CpError> {
        match self.get_mut(word_addr as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(CpError::Bus { addr: word_addr }),
        }
    }
}

/// Faults the processor can raise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpError {
    /// Memory access outside the configured space.
    Bus {
        /// Offending word address.
        addr: u32,
    },
    /// Integer division (or remainder) by zero.
    DivByZero,
    /// Undecodable operation number in `opr`.
    IllegalOp {
        /// The operand-register value that selected no operation.
        code: u32,
    },
    /// The processor executed `max_steps` without halting or yielding.
    StepLimit,
}

impl std::fmt::Display for CpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpError::Bus { addr } => write!(f, "bus error at word address {addr:#x}"),
            CpError::DivByZero => write!(f, "integer division by zero"),
            CpError::IllegalOp { code } => write!(f, "illegal operation {code:#x}"),
            CpError::StepLimit => write!(f, "step limit exceeded (runaway program?)"),
        }
    }
}

impl std::error::Error for CpError {}

/// I/O requests the processor hands to the embedding layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpEvent {
    /// Receive `words` 32-bit words into `ptr` from sublink `chan`.
    In {
        /// Sublink index.
        chan: u32,
        /// Destination word address.
        ptr: u32,
        /// Word count.
        words: u32,
    },
    /// Send `words` words from `ptr` over sublink `chan`.
    Out {
        /// Sublink index.
        chan: u32,
        /// Source word address.
        ptr: u32,
        /// Word count.
        words: u32,
    },
    /// Issue the vector form described by the 4-word descriptor at
    /// `descriptor` (form, x_row, y_row, z_row) over `n` elements.
    VecIssue {
        /// Word address of the descriptor.
        descriptor: u32,
        /// Element count.
        n: u32,
    },
}

/// What a call to [`Cp::run`] ended with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// `halt` executed: the program is done.
    Halted,
    /// The processor requests I/O; resume with [`Cp::run`] after servicing.
    Yielded(CpEvent),
}

/// Processor state.
#[derive(Clone, Debug)]
pub struct Cp {
    /// Evaluation stack top.
    pub a: u32,
    /// Evaluation stack middle.
    pub b: u32,
    /// Evaluation stack bottom.
    pub c: u32,
    /// Workspace pointer (word address of local 0).
    pub wptr: u32,
    /// Instruction pointer (byte address).
    pub iptr: u32,
    /// Operand register (prefix accumulator).
    pub oreg: u32,
    /// Processor cycles consumed so far.
    pub cycles: u64,
    /// Instructions executed so far.
    pub instructions: u64,
    /// Word addresses below this bound count as single-cycle on-chip RAM
    /// (the 2 KB static RAM: 512 words).
    pub on_chip_words: u32,
    halted: bool,
}

impl Cp {
    /// A processor with Iptr at `entry` (byte address) and workspace at
    /// `wptr` (word address).
    pub fn new(entry: u32, wptr: u32) -> Cp {
        Cp {
            a: 0,
            b: 0,
            c: 0,
            wptr,
            iptr: entry,
            oreg: 0,
            cycles: 0,
            instructions: 0,
            on_chip_words: 512,
            halted: false,
        }
    }

    /// Has `halt` been executed?
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    #[inline]
    fn push(&mut self, v: u32) {
        self.c = self.b;
        self.b = self.a;
        self.a = v;
    }

    #[inline]
    fn pop(&mut self) -> u32 {
        let v = self.a;
        self.a = self.b;
        self.b = self.c;
        v
    }

    #[inline]
    fn on_chip(&self, word_addr: u32) -> bool {
        word_addr < self.on_chip_words
    }

    /// Execute one instruction. `Ok(None)` means keep running.
    pub fn step(&mut self, bus: &mut dyn CpBus) -> Result<Option<StepOutcome>, CpError> {
        debug_assert!(!self.halted, "stepping a halted processor");
        let byte = bus.fetch_byte(self.iptr)?;
        self.iptr += 1;
        self.instructions += 1;
        self.cycles += 1; // fetch/decode (prefetch amortized)
        let d = Direct::from_nibble(byte >> 4);
        let data = (byte & 0xf) as u32;
        match d {
            Direct::Pfix => {
                self.oreg = (self.oreg | data) << 4;
                return Ok(None);
            }
            Direct::Nfix => {
                self.oreg = !(self.oreg | data) << 4;
                return Ok(None);
            }
            _ => {}
        }
        let operand = self.oreg | data;
        self.oreg = 0;
        let soperand = operand as i32;
        match d {
            Direct::Pfix | Direct::Nfix => unreachable!(),
            Direct::J => {
                self.cycles += direct_cycles(d, true);
                self.iptr = self.iptr.wrapping_add_signed(soperand);
            }
            Direct::Ldlp => {
                self.cycles += 1;
                let addr = self.wptr.wrapping_add_signed(soperand);
                self.push(addr);
            }
            Direct::Ldnl => {
                let addr = self.a.wrapping_add_signed(soperand);
                self.cycles += direct_cycles(d, self.on_chip(addr));
                self.a = bus.read(addr)?;
            }
            Direct::Ldc => {
                self.cycles += 1;
                self.push(operand);
            }
            Direct::Ldnlp => {
                self.cycles += 1;
                self.a = self.a.wrapping_add_signed(soperand);
            }
            Direct::Ldl => {
                let addr = self.wptr.wrapping_add_signed(soperand);
                self.cycles += direct_cycles(d, self.on_chip(addr));
                let v = bus.read(addr)?;
                self.push(v);
            }
            Direct::Adc => {
                self.cycles += 1;
                self.a = self.a.wrapping_add_signed(soperand);
            }
            Direct::Call => {
                self.cycles += direct_cycles(d, true);
                self.wptr = self.wptr.wrapping_sub(1);
                bus.write(self.wptr, self.iptr)?;
                self.iptr = self.iptr.wrapping_add_signed(soperand);
            }
            Direct::Cj => {
                self.cycles += direct_cycles(d, true);
                if self.a == 0 {
                    self.iptr = self.iptr.wrapping_add_signed(soperand);
                } else {
                    self.pop();
                }
            }
            Direct::Ajw => {
                self.cycles += 1;
                self.wptr = self.wptr.wrapping_add_signed(soperand);
            }
            Direct::Eqc => {
                self.cycles += 1;
                self.a = u32::from(self.a == operand);
            }
            Direct::Stl => {
                let addr = self.wptr.wrapping_add_signed(soperand);
                self.cycles += direct_cycles(d, self.on_chip(addr));
                let v = self.pop();
                bus.write(addr, v)?;
            }
            Direct::Stnl => {
                let addr = self.a.wrapping_add_signed(soperand);
                self.cycles += direct_cycles(d, self.on_chip(addr));
                self.pop();
                let v = self.pop();
                bus.write(addr, v)?;
            }
            Direct::Opr => return self.operate(operand, bus),
        }
        Ok(None)
    }

    fn operate(&mut self, code: u32, bus: &mut dyn CpBus) -> Result<Option<StepOutcome>, CpError> {
        let op = Op::from_u32(code).ok_or(CpError::IllegalOp { code })?;
        self.cycles += op.cycles();
        match op {
            Op::Rev => std::mem::swap(&mut self.a, &mut self.b),
            Op::Add => {
                let a = self.pop();
                self.a = self.a.wrapping_add(a);
            }
            Op::Sub => {
                let a = self.pop();
                self.a = self.a.wrapping_sub(a);
            }
            Op::Mul => {
                let a = self.pop();
                self.a = self.a.wrapping_mul(a);
            }
            Op::Div => {
                let a = self.pop();
                if a == 0 {
                    return Err(CpError::DivByZero);
                }
                self.a = (self.a as i32).wrapping_div(a as i32) as u32;
            }
            Op::Rem => {
                let a = self.pop();
                if a == 0 {
                    return Err(CpError::DivByZero);
                }
                self.a = (self.a as i32).wrapping_rem(a as i32) as u32;
            }
            Op::And => {
                let a = self.pop();
                self.a &= a;
            }
            Op::Or => {
                let a = self.pop();
                self.a |= a;
            }
            Op::Xor => {
                let a = self.pop();
                self.a ^= a;
            }
            Op::Not => self.a = !self.a,
            Op::Shl => {
                let a = self.pop();
                self.a = self.a.wrapping_shl(a);
            }
            Op::Shr => {
                let a = self.pop();
                self.a = self.a.wrapping_shr(a);
            }
            Op::Gt => {
                let a = self.pop();
                self.a = u32::from((self.a as i32) > (a as i32));
            }
            Op::Diff => {
                let a = self.pop();
                self.a = self.a.wrapping_sub(a);
            }
            Op::Sum => {
                let a = self.pop();
                self.a = self.a.wrapping_add(a);
            }
            Op::Dup => {
                let a = self.a;
                self.push(a);
            }
            Op::Pop => {
                self.pop();
            }
            Op::Wsub => {
                // Word subscript: addresses here are word-granular, so the
                // subscript is a plain add of base (B) and index (A).
                let idx = self.pop();
                self.a = self.a.wrapping_add(idx);
            }
            Op::Mint => self.push(i32::MIN as u32),
            Op::Ret => {
                self.iptr = bus.read(self.wptr)?;
                self.wptr = self.wptr.wrapping_add(1);
            }
            Op::Lend => {
                // A = back offset (bytes), B = word address of the counter.
                let off = self.pop();
                let cnt_addr = self.pop();
                let cnt = bus.read(cnt_addr)?.wrapping_sub(1);
                bus.write(cnt_addr, cnt)?;
                if (cnt as i32) > 0 {
                    self.iptr = self.iptr.wrapping_sub(off);
                }
            }
            Op::In | Op::Out => {
                let words = self.pop();
                let ptr = self.pop();
                let chan = self.pop();
                let ev = if op == Op::In {
                    CpEvent::In { chan, ptr, words }
                } else {
                    CpEvent::Out { chan, ptr, words }
                };
                return Ok(Some(StepOutcome::Yielded(ev)));
            }
            Op::VecOp => {
                let n = self.pop();
                let descriptor = self.pop();
                return Ok(Some(StepOutcome::Yielded(CpEvent::VecIssue {
                    descriptor,
                    n,
                })));
            }
            Op::Halt => {
                self.halted = true;
                return Ok(Some(StepOutcome::Halted));
            }
        }
        Ok(None)
    }

    /// Run until halt, yield, or `max_steps` instructions.
    pub fn run(&mut self, bus: &mut dyn CpBus, max_steps: u64) -> Result<StepOutcome, CpError> {
        for _ in 0..max_steps {
            if let Some(outcome) = self.step(bus)? {
                return Ok(outcome);
            }
        }
        Err(CpError::StepLimit)
    }

    /// Elapsed processor time: `cycles × CP_CYCLE`.
    pub fn elapsed(&self) -> ts_sim::Dur {
        crate::isa::CP_CYCLE * self.cycles
    }

    /// Average achieved MIPS so far.
    pub fn mips(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / (self.elapsed().as_secs_f64() * 1e6)
    }
}

/// Load assembled code into a bus at byte address `base` (word aligned).
pub fn load_code(bus: &mut dyn CpBus, base: u32, code: &[u8]) -> Result<(), CpError> {
    assert_eq!(base % 4, 0, "code must be word aligned");
    for (i, chunk) in code.chunks(4).enumerate() {
        let mut w = 0u32;
        for (lane, &b) in chunk.iter().enumerate() {
            w |= (b as u32) << (8 * lane);
        }
        bus.write(base / 4 + i as u32, w)?;
    }
    Ok(())
}

/// Marker trait alias kept for API compatibility in the facade crate.
pub trait VecBus: CpBus {}
impl<T: CpBus + ?Sized> VecBus for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn machine(code: &str) -> (Cp, Vec<u32>) {
        let bytes = assemble(code).expect("assembly failed");
        let mut mem = vec![0u32; 4096];
        load_code(&mut mem, 1024 * 4, &bytes).unwrap(); // code at word 1024
        (Cp::new(1024 * 4, 256), mem) // workspace on-chip at word 256
    }

    #[test]
    fn arithmetic_program() {
        let (mut cp, mut mem) = machine(
            "ldc 6\n\
             ldc 7\n\
             mul\n\
             adc 8\n\
             stl 0\n\
             halt\n",
        );
        assert_eq!(cp.run(&mut mem, 1000).unwrap(), StepOutcome::Halted);
        assert_eq!(mem[256], 50);
        assert!(cp.is_halted());
    }

    #[test]
    fn large_and_negative_constants_via_prefixes() {
        let (mut cp, mut mem) = machine(
            "ldc 1000000\n\
             stl 0\n\
             ldc -12345\n\
             stl 1\n\
             halt\n",
        );
        cp.run(&mut mem, 1000).unwrap();
        assert_eq!(mem[256], 1_000_000);
        assert_eq!(mem[257] as i32, -12345);
    }

    #[test]
    fn loop_with_cj() {
        // sum = 0; i = 10; do { sum += i; i -= 1 } while (i != 0)
        let (mut cp, mut mem) = machine(
            "ldc 0\n\
             stl 0\n\
             ldc 10\n\
             stl 1\n\
             loop:\n\
             ldl 0\n\
             ldl 1\n\
             add\n\
             stl 0\n\
             ldl 1\n\
             adc -1\n\
             stl 1\n\
             ldl 1\n\
             eqc 0\n\
             cj loop\n\
             halt\n",
        );
        cp.run(&mut mem, 10_000).unwrap();
        assert_eq!(mem[256], 55);
    }

    #[test]
    fn call_and_ret() {
        let (mut cp, mut mem) = machine(
            "ldc 5\n\
             call double\n\
             stl 0\n\
             halt\n\
             double:\n\
             ldl 1\n\
             pop\n\
             dup\n\
             add\n\
             ret\n",
        );
        // Note: `call` pushes the return address into the workspace; the
        // callee sees its argument still in A. `ldl 1; pop` just exercises
        // workspace addressing.
        cp.run(&mut mem, 1000).unwrap();
        assert_eq!(mem[256], 10);
    }

    #[test]
    fn non_local_memory() {
        let (mut cp, mut mem) = machine(
            "ldc 2000\n\
             ldnl 0\n\
             adc 1\n\
             ldc 2000\n\
             stnl 1\n\
             halt\n",
        );
        mem[2000] = 99;
        cp.run(&mut mem, 1000).unwrap();
        assert_eq!(mem[2001], 100);
    }

    #[test]
    fn channel_out_yields() {
        let (mut cp, mut mem) = machine(
            "ldc 3\n\
             ldc 512\n\
             ldc 16\n\
             out\n\
             halt\n",
        );
        let outcome = cp.run(&mut mem, 1000).unwrap();
        assert_eq!(
            outcome,
            StepOutcome::Yielded(CpEvent::Out {
                chan: 3,
                ptr: 512,
                words: 16
            })
        );
        // Resume: next run halts.
        assert_eq!(cp.run(&mut mem, 10).unwrap(), StepOutcome::Halted);
    }

    #[test]
    fn vec_issue_yields() {
        let (mut cp, mut mem) = machine(
            "ldc 640\n\
             ldc 128\n\
             vecop\n\
             halt\n",
        );
        let outcome = cp.run(&mut mem, 1000).unwrap();
        assert_eq!(
            outcome,
            StepOutcome::Yielded(CpEvent::VecIssue {
                descriptor: 640,
                n: 128
            })
        );
    }

    #[test]
    fn div_by_zero_faults() {
        let (mut cp, mut mem) = machine("ldc 4\nldc 0\ndiv\nhalt\n");
        assert_eq!(cp.run(&mut mem, 100), Err(CpError::DivByZero));
    }

    #[test]
    fn step_limit_detects_runaway() {
        let (mut cp, mut mem) = machine("spin:\nj spin\n");
        assert_eq!(cp.run(&mut mem, 100), Err(CpError::StepLimit));
    }

    #[test]
    fn instruction_rate_is_about_7_5_mips() {
        // A register-heavy loop (the instruction mix the 7.5 MIPS figure
        // describes) must land near 7.5 MIPS in the cycle model.
        let (mut cp, mut mem) = machine(
            "ldc 20000\n\
             stl 1\n\
             loop:\n\
             ldl 1\n\
             adc -1\n\
             stl 1\n\
             ldl 1\n\
             eqc 0\n\
             cj loop\n\
             halt\n",
        );
        cp.run(&mut mem, 1_000_000).unwrap();
        let mips = cp.mips();
        assert!(mips > 6.0 && mips < 9.5, "mips = {mips}");
    }

    #[test]
    fn off_chip_access_is_slower() {
        let on = "ldc 1\nstl 0\nldl 0\nhalt\n"; // workspace at word 256 (on-chip)
        let (mut cp_on, mut mem_on) = machine(on);
        cp_on.run(&mut mem_on, 100).unwrap();
        let (mut cp_off, mut mem_off) = machine(on);
        cp_off.wptr = 2048; // off-chip workspace
        cp_off.run(&mut mem_off, 100).unwrap();
        assert!(cp_off.cycles > cp_on.cycles);
    }
}
