//! A small two-pass assembler for the control-processor ISA.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! ; comment
//! start:            ; label (byte address of the next instruction)
//! ldc 1000000       ; direct function with an integer operand
//! stl 0
//! j start           ; jump/cj/call take labels (or raw offsets)
//! add               ; secondary operations by name
//! halt
//! ```
//!
//! Because operands are encoded with `pfix`/`nfix` chains, an
//! instruction's length depends on its operand, and jump operands depend on
//! label distances — so label resolution iterates to a fixpoint (sizes only
//! ever grow, so the iteration terminates).

use std::collections::HashMap;

use crate::isa::{Direct, Op};

/// Assembly errors with line numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// Unknown mnemonic.
    UnknownMnemonic {
        /// 1-based source line.
        line: usize,
        /// The text that failed to parse.
        text: String,
    },
    /// Operand missing or malformed.
    BadOperand {
        /// 1-based source line.
        line: usize,
        /// The text that failed to parse.
        text: String,
    },
    /// A label was referenced but never defined.
    UndefinedLabel {
        /// 1-based source line.
        line: usize,
        /// The missing label.
        label: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// 1-based source line.
        line: usize,
        /// The duplicated label.
        label: String,
    },
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnknownMnemonic { line, text } => {
                write!(f, "line {line}: unknown mnemonic `{text}`")
            }
            AsmError::BadOperand { line, text } => {
                write!(f, "line {line}: bad operand in `{text}`")
            }
            AsmError::UndefinedLabel { line, label } => {
                write!(f, "line {line}: undefined label `{label}`")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Clone, Debug)]
enum Operand {
    Imm(i64),
    Label(String),
}

#[derive(Clone, Debug)]
enum Item {
    DirectFn {
        d: Direct,
        operand: Operand,
        line: usize,
    },
    Operation(Op),
}

fn direct_of(m: &str) -> Option<Direct> {
    Some(match m {
        "j" => Direct::J,
        "ldlp" => Direct::Ldlp,
        "pfix" => Direct::Pfix,
        "ldnl" => Direct::Ldnl,
        "ldc" => Direct::Ldc,
        "ldnlp" => Direct::Ldnlp,
        "nfix" => Direct::Nfix,
        "ldl" => Direct::Ldl,
        "adc" => Direct::Adc,
        "call" => Direct::Call,
        "cj" => Direct::Cj,
        "ajw" => Direct::Ajw,
        "eqc" => Direct::Eqc,
        "stl" => Direct::Stl,
        "stnl" => Direct::Stnl,
        _ => return None,
    })
}

fn op_of(m: &str) -> Option<Op> {
    Some(match m {
        "rev" => Op::Rev,
        "add" => Op::Add,
        "sub" => Op::Sub,
        "mul" => Op::Mul,
        "div" => Op::Div,
        "rem" => Op::Rem,
        "and" => Op::And,
        "or" => Op::Or,
        "xor" => Op::Xor,
        "not" => Op::Not,
        "shl" => Op::Shl,
        "shr" => Op::Shr,
        "gt" => Op::Gt,
        "diff" => Op::Diff,
        "sum" => Op::Sum,
        "dup" => Op::Dup,
        "pop" => Op::Pop,
        "wsub" => Op::Wsub,
        "mint" => Op::Mint,
        "ret" => Op::Ret,
        "lend" => Op::Lend,
        "in" => Op::In,
        "out" => Op::Out,
        "vecop" => Op::VecOp,
        "halt" => Op::Halt,
        _ => return None,
    })
}

/// Encode a direct function with operand `k` (prefix chains as needed).
pub fn encode_direct(d: Direct, k: i64, out: &mut Vec<u8>) {
    fn prefix(k: i64, out: &mut Vec<u8>) {
        if k >= 16 {
            prefix(k >> 4, out);
            out.push(((Direct::Pfix as u8) << 4) | (k & 0xf) as u8);
        } else if k >= 0 {
            out.push(((Direct::Pfix as u8) << 4) | (k & 0xf) as u8);
        } else {
            // negative: nfix complements
            prefix_neg(k, out);
        }
    }
    fn prefix_neg(k: i64, out: &mut Vec<u8>) {
        let nk = !k; // non-negative
        if nk >> 4 != 0 {
            prefix(nk >> 4, out);
            out.push(((Direct::Nfix as u8) << 4) | (nk & 0xf) as u8);
        } else {
            out.push(((Direct::Nfix as u8) << 4) | (nk & 0xf) as u8);
        }
    }
    if (0..16).contains(&k) {
        out.push(((d as u8) << 4) | k as u8);
    } else if k >= 16 {
        prefix(k >> 4, out);
        out.push(((d as u8) << 4) | (k & 0xf) as u8);
    } else {
        prefix_neg(k >> 4, out);
        out.push(((d as u8) << 4) | (k & 0xf) as u8);
    }
}

/// Encode an operation (an `opr` with the operation number as operand).
pub fn encode_op(op: Op, out: &mut Vec<u8>) {
    encode_direct(Direct::Opr, op as i64, out);
}

fn encoded_len(d: Direct, k: i64) -> usize {
    let mut tmp = Vec::with_capacity(8);
    encode_direct(d, k, &mut tmp);
    tmp.len()
}

/// Assemble a program into its byte code. Jump targets are byte offsets
/// relative to the **end** of the jump instruction.
pub fn assemble(src: &str) -> Result<Vec<u8>, AsmError> {
    // Parse.
    let mut items: Vec<Item> = Vec::new();
    // label → item index it precedes
    let mut labels: HashMap<String, usize> = HashMap::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(AsmError::BadOperand {
                    line,
                    text: text.into(),
                });
            }
            if labels.insert(label.to_string(), items.len()).is_some() {
                return Err(AsmError::DuplicateLabel {
                    line,
                    label: label.into(),
                });
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().unwrap().to_ascii_lowercase();
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(AsmError::BadOperand {
                line,
                text: rest.into(),
            });
        }
        if let Some(d) = direct_of(&mnemonic) {
            let operand = match arg {
                None => {
                    return Err(AsmError::BadOperand {
                        line,
                        text: rest.into(),
                    })
                }
                Some(a) => match a.parse::<i64>() {
                    Ok(v) => Operand::Imm(v),
                    Err(_) => Operand::Label(a.to_string()),
                },
            };
            items.push(Item::DirectFn { d, operand, line });
        } else if let Some(op) = op_of(&mnemonic) {
            if arg.is_some() {
                return Err(AsmError::BadOperand {
                    line,
                    text: rest.into(),
                });
            }
            items.push(Item::Operation(op));
        } else {
            return Err(AsmError::UnknownMnemonic {
                line,
                text: mnemonic,
            });
        }
    }

    // Size fixpoint: start by assuming every instruction is 1 byte.
    let n = items.len();
    let mut sizes = vec![1usize; n];
    loop {
        // Item start offsets under current size assumption.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut off = 0usize;
        for &s in &sizes {
            offsets.push(off);
            off += s;
        }
        offsets.push(off); // one past the end (labels at EOF)
        let mut changed = false;
        for (i, item) in items.items_iter() {
            let need = match item {
                Item::Operation(op) => {
                    let mut tmp = Vec::new();
                    encode_op(*op, &mut tmp);
                    tmp.len()
                }
                Item::DirectFn { d, operand, line } => {
                    let k = operand_value(operand, *line, i, &labels, &offsets, &sizes)?;
                    encoded_len(*d, k)
                }
            };
            if need != sizes[i] {
                sizes[i] = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Emit.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut off = 0usize;
    for &s in &sizes {
        offsets.push(off);
        off += s;
    }
    offsets.push(off);
    let mut out = Vec::with_capacity(off);
    for (i, item) in items.items_iter() {
        match item {
            Item::Operation(op) => encode_op(*op, &mut out),
            Item::DirectFn { d, operand, line } => {
                let k = operand_value(operand, *line, i, &labels, &offsets, &sizes)?;
                encode_direct(*d, k, &mut out);
            }
        }
        debug_assert_eq!(out.len(), offsets[i] + sizes[i]);
    }
    Ok(out)
}

/// Resolve an operand: immediate, or label → relative byte offset from the
/// end of instruction `i`.
fn operand_value(
    operand: &Operand,
    line: usize,
    i: usize,
    labels: &HashMap<String, usize>,
    offsets: &[usize],
    sizes: &[usize],
) -> Result<i64, AsmError> {
    match operand {
        Operand::Imm(v) => Ok(*v),
        Operand::Label(l) => {
            let target = *labels.get(l).ok_or_else(|| AsmError::UndefinedLabel {
                line,
                label: l.clone(),
            })?;
            let target_off = offsets[target] as i64;
            let after_insn = (offsets[i] + sizes[i]) as i64;
            Ok(target_off - after_insn)
        }
    }
}

/// Tiny helper so the fixpoint loop can enumerate with indices without
/// borrowing issues.
trait ItemsIter {
    fn items_iter(&self) -> std::iter::Enumerate<std::slice::Iter<'_, Item>>;
}

impl ItemsIter for Vec<Item> {
    fn items_iter(&self) -> std::iter::Enumerate<std::slice::Iter<'_, Item>> {
        self.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_encodings() {
        let code = assemble("ldc 5\nstl 3\nadd\nhalt\n").unwrap();
        assert_eq!(code[0], 0x45); // ldc 5
        assert_eq!(code[1], 0xd3); // stl 3
        assert_eq!(code[2], 0xf1); // opr add(1)
                                   // halt = opr 0x18 needs a pfix.
        assert_eq!(&code[3..], &[0x21, 0xf8]);
    }

    #[test]
    fn prefix_chains() {
        let mut out = Vec::new();
        encode_direct(Direct::Ldc, 0x123, &mut out);
        // pfix 1, pfix 2, ldc 3
        assert_eq!(out, vec![0x21, 0x22, 0x43]);
        let mut out = Vec::new();
        encode_direct(Direct::Ldc, -1, &mut out);
        // nfix 0, ldc 15: oreg = (~0)<<4 = ...fff0 | f = -1.
        assert_eq!(out, vec![0x60, 0x4f]);
    }

    #[test]
    fn negative_encoding_decodes_correctly() {
        // Round-trip every interesting operand through a real decode loop.
        for k in [
            -1i64,
            -2,
            -15,
            -16,
            -17,
            -256,
            -4097,
            -1_000_000,
            0,
            15,
            16,
            255,
            1 << 20,
        ] {
            let mut bytes = Vec::new();
            encode_direct(Direct::Ldc, k, &mut bytes);
            let mut oreg: u32 = 0;
            let mut result = None;
            for b in bytes {
                let nib = (b & 0xf) as u32;
                match b >> 4 {
                    0x2 => oreg = (oreg | nib) << 4,
                    0x6 => oreg = !(oreg | nib) << 4,
                    0x4 => result = Some(oreg | nib),
                    _ => panic!("unexpected byte"),
                }
            }
            assert_eq!(result.unwrap() as i32 as i64, k, "k = {k}");
        }
    }

    #[test]
    fn labels_forward_and_backward() {
        let code = assemble(
            "start:\n\
             ldc 1\n\
             cj end\n\
             j start\n\
             end:\n\
             halt\n",
        )
        .unwrap();
        assert!(!code.is_empty());
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("x:\nldc 1\nx:\nhalt\n").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateLabel { .. }));
    }

    #[test]
    fn undefined_label_rejected() {
        let err = assemble("j nowhere\n").unwrap_err();
        assert!(matches!(err, AsmError::UndefinedLabel { .. }));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let err = assemble("frobnicate\n").unwrap_err();
        assert!(matches!(err, AsmError::UnknownMnemonic { .. }));
    }

    #[test]
    fn comments_and_blank_lines() {
        let code = assemble("; a comment\n\n  ldc 1 ; trailing\nhalt\n").unwrap();
        assert_eq!(code[0], 0x41);
    }

    #[test]
    fn far_jump_grows_prefixes() {
        // A jump over > 16 bytes of code needs a pfix chain; the fixpoint
        // must converge and the target must still be correct (verified by
        // running it in the emulator tests).
        let mut src = String::from("j end\n");
        for _ in 0..40 {
            src.push_str("ldc 1\npop\n");
        }
        src.push_str("end:\nhalt\n");
        let code = assemble(&src).unwrap();
        assert!(code.len() > 82);
        assert_eq!(code[0] >> 4, 0x2, "first byte is a pfix of the long jump");
    }
}
