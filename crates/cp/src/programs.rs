//! A small run-time library of assembly routines for the control
//! processor — the kind of kernel-support code the machine's system
//! software would keep in the on-chip RAM. Each generator returns
//! assembly text (so callers can compose or inspect it) together with the
//! workspace-slot conventions it uses.
//!
//! These routines double as substantial emulator tests: each one is
//! executed against a reference model in this module's test suite.

/// Word-by-word memory copy: `dst[0..n] = src[0..n]`.
///
/// All three parameters are compile-time constants of the generated code
/// (the CP would normally take them in workspace slots; constants keep the
/// generated code legible).
pub fn memcpy(src: u32, dst: u32, n: u32) -> String {
    format!(
        "; memcpy {n} words {src} -> {dst}\n\
         ldc {src}\nstl 0\n\
         ldc {dst}\nstl 1\n\
         ldc {n}\nstl 2\n\
         loop:\n\
         ldl 0\nldnl 0\n\
         ldl 1\nstnl 0\n\
         ldl 0\nadc 1\nstl 0\n\
         ldl 1\nadc 1\nstl 1\n\
         ldl 2\nadc -1\nstl 2\n\
         ldl 2\neqc 0\ncj loop\n\
         halt\n"
    )
}

/// Fill `n` words at `dst` with `value`.
pub fn memset(dst: u32, value: i32, n: u32) -> String {
    format!(
        "; memset {n} words at {dst} = {value}\n\
         ldc {dst}\nstl 0\n\
         ldc {n}\nstl 1\n\
         loop:\n\
         ldc {value}\n\
         ldl 0\nstnl 0\n\
         ldl 0\nadc 1\nstl 0\n\
         ldl 1\nadc -1\nstl 1\n\
         ldl 1\neqc 0\ncj loop\n\
         halt\n"
    )
}

/// Sum `n` words at `src`, leaving the result in workspace slot 3.
pub fn sum_words(src: u32, n: u32) -> String {
    format!(
        "; sum {n} words at {src} -> wsp[3]\n\
         ldc {src}\nstl 0\n\
         ldc {n}\nstl 1\n\
         ldc 0\nstl 3\n\
         loop:\n\
         ldl 3\n\
         ldl 0\nldnl 0\n\
         add\nstl 3\n\
         ldl 0\nadc 1\nstl 0\n\
         ldl 1\nadc -1\nstl 1\n\
         ldl 1\neqc 0\ncj loop\n\
         halt\n"
    )
}

/// Find the maximum of `n` signed words at `src`, result in slot 3.
pub fn max_words(src: u32, n: u32) -> String {
    format!(
        "; max of {n} signed words at {src} -> wsp[3]\n\
         ldc {src}\nstl 0\n\
         ldc {n}\nstl 1\n\
         mint\nstl 3\n\
         loop:\n\
         ldl 0\nldnl 0\nstl 4\n\
         ldl 4\nldl 3\ngt\n\
         cj skip\n\
         ldl 4\nstl 3\n\
         skip:\n\
         ldl 0\nadc 1\nstl 0\n\
         ldl 1\nadc -1\nstl 1\n\
         ldl 1\neqc 0\ncj loop\n\
         halt\n"
    )
}

/// The element-at-a-time **gather loop** of §II: move `n` 64-bit elements
/// whose low-word addresses sit in a pointer table at `table` into a
/// contiguous area at `dst`. Four off-chip word accesses per element —
/// exactly the 1.6 µs/element the paper charges.
pub fn gather64(table: u32, dst: u32, n: u32) -> String {
    format!(
        "; gather {n} 64-bit elements via table {table} -> {dst}\n\
         ldc {table}\nstl 0\n\
         ldc {dst}\nstl 1\n\
         ldc {n}\nstl 2\n\
         loop:\n\
         ldl 0\nldnl 0\nstl 3\n\
         ldl 3\nldnl 0\n\
         ldl 1\nstnl 0\n\
         ldl 3\nldnl 1\n\
         ldl 1\nstnl 1\n\
         ldl 0\nadc 1\nstl 0\n\
         ldl 1\nadc 2\nstl 1\n\
         ldl 2\nadc -1\nstl 2\n\
         ldl 2\neqc 0\ncj loop\n\
         halt\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::{load_code, Cp};
    use crate::{assemble, StepOutcome};

    fn run(src: &str, mem: &mut Vec<u32>) -> Cp {
        let code = assemble(src).expect("assembly failed");
        load_code(mem, 16384, &code).unwrap();
        let mut cp = Cp::new(16384, 256);
        assert_eq!(cp.run(mem, 10_000_000).unwrap(), StepOutcome::Halted);
        cp
    }

    #[test]
    fn memcpy_copies() {
        let mut mem = vec![0u32; 8192];
        for i in 0..64 {
            mem[1000 + i] = (i * 7 + 3) as u32;
        }
        run(&memcpy(1000, 2000, 64), &mut mem);
        for i in 0..64 {
            assert_eq!(mem[2000 + i], (i * 7 + 3) as u32);
        }
    }

    #[test]
    fn memset_fills() {
        let mut mem = vec![0u32; 8192];
        run(&memset(3000, -5, 40), &mut mem);
        for i in 0..40 {
            assert_eq!(mem[3000 + i] as i32, -5);
        }
        assert_eq!(mem[3040], 0, "no overrun");
    }

    #[test]
    fn sum_matches_reference() {
        let mut mem = vec![0u32; 8192];
        let vals: Vec<i32> = (0..50).map(|i| i * i - 300).collect();
        for (i, &v) in vals.iter().enumerate() {
            mem[4000 + i] = v as u32;
        }
        run(&sum_words(4000, 50), &mut mem);
        let want: i32 = vals.iter().sum();
        assert_eq!(mem[256 + 3] as i32, want);
    }

    #[test]
    fn max_matches_reference() {
        let mut mem = vec![0u32; 8192];
        let vals: Vec<i32> = vec![-7, 3, 100, -200, 55, 99, 12];
        for (i, &v) in vals.iter().enumerate() {
            mem[5000 + i] = v as u32;
        }
        run(&max_words(5000, vals.len() as u32), &mut mem);
        assert_eq!(mem[256 + 3] as i32, 100);
    }

    #[test]
    fn gather_moves_elements_and_costs_four_accesses() {
        let mut mem = vec![0u32; 16384];
        // Scatter 16 64-bit elements at stride 8, pointer table at 6000.
        for i in 0..16u32 {
            let addr = 8000 + 8 * i;
            mem[6000 + i as usize] = addr;
            mem[addr as usize] = i * 10; // low word
            mem[addr as usize + 1] = i * 10 + 1; // high word
        }
        let cp = run(&gather64(6000, 7000, 16), &mut mem);
        for i in 0..16usize {
            assert_eq!(mem[7000 + 2 * i], (i * 10) as u32);
            assert_eq!(mem[7000 + 2 * i + 1], (i * 10 + 1) as u32);
        }
        // Timing: the paper's 1.6 µs/element counts only the four off-chip
        // word accesses. A straight-line interpreted loop adds table reads,
        // pointer bumps and the loop branch, landing near 5 µs/element —
        // the gap a hand-unrolled on-chip gather routine would close. The
        // memory-access floor (4 × 400 ns = 1.6 µs) is the model `ts-node`
        // charges; this test pins the un-tuned-loop reality above it.
        let per_elem_us = cp.elapsed().as_us_f64() / 16.0;
        assert!(
            (1.6..6.0).contains(&per_elem_us),
            "gather loop costs {per_elem_us} µs/element"
        );
    }

    #[test]
    fn generated_programs_assemble_cleanly() {
        for src in [
            memcpy(0, 1, 1),
            memset(0, 0, 1),
            sum_words(0, 1),
            max_words(0, 1),
            gather64(0, 1, 1),
        ] {
            assert!(assemble(&src).is_ok(), "failed to assemble:\n{src}");
        }
    }
}
