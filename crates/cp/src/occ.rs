//! **occ** — a miniature Occam-flavoured language compiled to the control
//! processor's instruction set.
//!
//! §II *Control*: "All features of the microprocessor are directly accessed
//! through a high-level language called Occam." This module makes that
//! claim concrete for the scalar core of such a language: integer
//! variables, expressions, `seq` blocks (implicit), `while`, `if/else`,
//! plus channel `send`/`recv` compiling to the `out`/`in` instructions.
//!
//! The surface syntax is deliberately tiny:
//!
//! ```text
//! x := 10;
//! acc := 0;
//! while x > 0 {
//!     acc := acc + x * x;
//!     x := x - 1;
//! }
//! send 0, acc;          -- channel 0 gets one word from `acc`
//! recv 1, reply;        -- one word from channel 1 into `reply`
//! ```
//!
//! Code generation targets the 3-register evaluation stack conservatively:
//! every binary operation spills its operands to workspace temporaries, so
//! expression depth can never overflow the A/B/C stack. Variables occupy
//! workspace slots from 0; temporaries grow above them.

use std::collections::HashMap;

use crate::asm::assemble;

/// Compilation errors with positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OccError {
    /// 1-based line.
    pub line: usize,
    /// Message.
    pub msg: String,
}

impl std::fmt::Display for OccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for OccError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Assign, // :=
    Semi,
    Comma,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Op(String), // + - * / % & | ^ << >> == != < > <= >=
    KwWhile,
    KwIf,
    KwElse,
    KwSend,
    KwRecv,
    KwHalt,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, OccError> {
    let mut out = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split("--").next().unwrap_or("");
        let mut chars = text.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let tok = match s.as_str() {
                        "while" => Tok::KwWhile,
                        "if" => Tok::KwIf,
                        "else" => Tok::KwElse,
                        "send" => Tok::KwSend,
                        "recv" => Tok::KwRecv,
                        "halt" => Tok::KwHalt,
                        _ => Tok::Ident(s),
                    };
                    out.push((tok, line));
                }
                c if c.is_ascii_digit() => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_digit() {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let v = s.parse::<i64>().map_err(|_| OccError {
                        line,
                        msg: format!("bad number {s}"),
                    })?;
                    out.push((Tok::Num(v), line));
                }
                ':' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push((Tok::Assign, line));
                    } else {
                        return Err(OccError {
                            line,
                            msg: "expected := after :".into(),
                        });
                    }
                }
                ';' => {
                    chars.next();
                    out.push((Tok::Semi, line));
                }
                ',' => {
                    chars.next();
                    out.push((Tok::Comma, line));
                }
                '{' => {
                    chars.next();
                    out.push((Tok::LBrace, line));
                }
                '}' => {
                    chars.next();
                    out.push((Tok::RBrace, line));
                }
                '(' => {
                    chars.next();
                    out.push((Tok::LParen, line));
                }
                ')' => {
                    chars.next();
                    out.push((Tok::RParen, line));
                }
                '<' | '>' => {
                    chars.next();
                    let mut s = c.to_string();
                    match chars.peek() {
                        Some('=') => {
                            s.push('=');
                            chars.next();
                        }
                        Some(&d) if d == c => {
                            s.push(d);
                            chars.next();
                        }
                        _ => {}
                    }
                    out.push((Tok::Op(s), line));
                }
                '=' | '!' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push((Tok::Op(format!("{c}=")), line));
                    } else {
                        return Err(OccError {
                            line,
                            msg: format!("lone {c}"),
                        });
                    }
                }
                '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' => {
                    chars.next();
                    out.push((Tok::Op(c.to_string()), line));
                }
                other => {
                    return Err(OccError {
                        line,
                        msg: format!("unexpected character {other:?}"),
                    })
                }
            }
        }
    }
    Ok(out)
}

#[derive(Clone, Debug)]
enum Expr {
    Num(i64),
    Var(String),
    Bin(String, Box<Expr>, Box<Expr>),
}

#[derive(Clone, Debug)]
enum Stmt {
    Assign(String, Expr),
    While(Expr, Vec<Stmt>),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    Send(Expr, String),
    Recv(Expr, String),
    Halt,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), OccError> {
        let line = self.line();
        match self.next() {
            Some(t) if &t == want => Ok(()),
            other => Err(OccError {
                line,
                msg: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn stmts_until_rbrace(&mut self) -> Result<Vec<Stmt>, OccError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.next();
                    return Ok(out);
                }
                Some(_) => out.push(self.stmt()?),
                None => {
                    return Err(OccError {
                        line: self.line(),
                        msg: "missing }".into(),
                    })
                }
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, OccError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(name)) => {
                self.expect(&Tok::Assign, ":=")?;
                let e = self.expr(0)?;
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Assign(name, e))
            }
            Some(Tok::KwWhile) => {
                let cond = self.expr(0)?;
                self.expect(&Tok::LBrace, "{")?;
                let body = self.stmts_until_rbrace()?;
                Ok(Stmt::While(cond, body))
            }
            Some(Tok::KwIf) => {
                let cond = self.expr(0)?;
                self.expect(&Tok::LBrace, "{")?;
                let then = self.stmts_until_rbrace()?;
                let els = if self.peek() == Some(&Tok::KwElse) {
                    self.next();
                    self.expect(&Tok::LBrace, "{")?;
                    self.stmts_until_rbrace()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Some(Tok::KwSend) => {
                let chan = self.expr(0)?;
                self.expect(&Tok::Comma, ",")?;
                let line2 = self.line();
                match self.next() {
                    Some(Tok::Ident(v)) => {
                        self.expect(&Tok::Semi, ";")?;
                        Ok(Stmt::Send(chan, v))
                    }
                    other => Err(OccError {
                        line: line2,
                        msg: format!("send needs a variable, found {other:?}"),
                    }),
                }
            }
            Some(Tok::KwRecv) => {
                let chan = self.expr(0)?;
                self.expect(&Tok::Comma, ",")?;
                let line2 = self.line();
                match self.next() {
                    Some(Tok::Ident(v)) => {
                        self.expect(&Tok::Semi, ";")?;
                        Ok(Stmt::Recv(chan, v))
                    }
                    other => Err(OccError {
                        line: line2,
                        msg: format!("recv needs a variable, found {other:?}"),
                    }),
                }
            }
            Some(Tok::KwHalt) => {
                self.expect(&Tok::Semi, ";")?;
                Ok(Stmt::Halt)
            }
            other => Err(OccError {
                line,
                msg: format!("unexpected {other:?}"),
            }),
        }
    }

    fn prec(op: &str) -> u8 {
        match op {
            "*" | "/" | "%" => 6,
            "+" | "-" => 5,
            "<<" | ">>" => 4,
            "&" | "^" | "|" => 3,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => 2,
            _ => 0,
        }
    }

    fn expr(&mut self, min_prec: u8) -> Result<Expr, OccError> {
        let mut lhs = self.atom()?;
        while let Some(Tok::Op(op)) = self.peek() {
            let p = Self::prec(op);
            if p < min_prec.max(1) {
                break;
            }
            let op = op.clone();
            self.next();
            let rhs = self.expr(p + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr, OccError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Ident(v)) => Ok(Expr::Var(v)),
            Some(Tok::LParen) => {
                let e = self.expr(0)?;
                self.expect(&Tok::RParen, ")")?;
                Ok(e)
            }
            Some(Tok::Op(op)) if op == "-" => {
                // Unary minus: 0 − atom.
                let a = self.atom()?;
                Ok(Expr::Bin("-".into(), Box::new(Expr::Num(0)), Box::new(a)))
            }
            other => Err(OccError {
                line,
                msg: format!("expected expression, found {other:?}"),
            }),
        }
    }
}

struct Codegen {
    vars: HashMap<String, usize>,
    next_slot: usize,
    max_slot: usize,
    label: usize,
    asm: String,
}

impl Codegen {
    fn slot(&mut self, name: &str) -> usize {
        if let Some(&s) = self.vars.get(name) {
            return s;
        }
        let s = self.next_slot;
        self.vars.insert(name.to_string(), s);
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        s
    }

    fn temp(&mut self) -> usize {
        let s = self.next_slot;
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        s
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.label += 1;
        format!("{stem}_{}", self.label)
    }

    fn emit(&mut self, line: &str) {
        self.asm.push_str(line);
        self.asm.push('\n');
    }

    /// Generate code leaving the expression value in A.
    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Num(v) => self.emit(&format!("ldc {v}")),
            Expr::Var(name) => {
                let s = self.slot(name);
                self.emit(&format!("ldl {s}"));
            }
            Expr::Bin(op, l, r) => {
                // Spill both operands to temporaries: stack depth stays ≤ 2.
                self.expr(l);
                let tl = self.temp();
                self.emit(&format!("stl {tl}"));
                self.expr(r);
                let tr = self.temp();
                self.emit(&format!("stl {tr}"));
                self.emit(&format!("ldl {tl}"));
                self.emit(&format!("ldl {tr}"));
                match op.as_str() {
                    "+" => self.emit("add"),
                    "-" => self.emit("sub"),
                    "*" => self.emit("mul"),
                    "/" => self.emit("div"),
                    "%" => self.emit("rem"),
                    "&" => self.emit("and"),
                    "|" => self.emit("or"),
                    "^" => self.emit("xor"),
                    "<<" => self.emit("shl"),
                    ">>" => self.emit("shr"),
                    ">" => self.emit("gt"),
                    "<" => {
                        // B < A  ==  A > B: swap then gt.
                        self.emit("rev");
                        self.emit("gt");
                    }
                    "==" => {
                        self.emit("sub");
                        self.emit("eqc 0");
                    }
                    "!=" => {
                        self.emit("sub");
                        self.emit("eqc 0");
                        self.emit("eqc 0");
                    }
                    ">=" => {
                        // !(B < A swapped): B >= A == !(A > B)
                        self.emit("rev");
                        self.emit("gt");
                        self.emit("eqc 0");
                    }
                    "<=" => {
                        self.emit("gt");
                        self.emit("eqc 0");
                    }
                    other => unreachable!("parser admits no operator {other}"),
                }
                // Free the temporaries.
                self.next_slot -= 2;
            }
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(name, e) => {
                self.expr(e);
                let slot = self.slot(name);
                self.emit(&format!("stl {slot}"));
            }
            Stmt::While(cond, body) => {
                let top = self.fresh_label("while");
                let exit = self.fresh_label("endwhile");
                self.emit(&format!("{top}:"));
                self.expr(cond);
                self.emit(&format!("cj {exit}")); // false (0) → exit
                self.stmts(body);
                // Unconditional jump back: cj with a guaranteed-zero A.
                self.emit("ldc 0");
                self.emit(&format!("cj {top}"));
                self.emit(&format!("{exit}:"));
            }
            Stmt::If(cond, then, els) => {
                let lfalse = self.fresh_label("else");
                let lend = self.fresh_label("endif");
                self.expr(cond);
                self.emit(&format!("cj {lfalse}"));
                self.stmts(then);
                self.emit("ldc 0");
                self.emit(&format!("cj {lend}"));
                self.emit(&format!("{lfalse}:"));
                self.stmts(els);
                self.emit(&format!("{lend}:"));
            }
            Stmt::Send(chan, var) => {
                // out expects C=chan, B=ptr, A=count.
                self.expr(chan);
                let slot = self.slot(var);
                self.emit(&format!("ldlp {slot}"));
                self.emit("ldc 1");
                self.emit("out");
            }
            Stmt::Recv(chan, var) => {
                self.expr(chan);
                let slot = self.slot(var);
                self.emit(&format!("ldlp {slot}"));
                self.emit("ldc 1");
                self.emit("in");
            }
            Stmt::Halt => self.emit("halt"),
        }
    }
}

/// A compiled program: byte code plus the variable→workspace-slot map.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Assembled machine code.
    pub code: Vec<u8>,
    /// The generated assembly (for inspection / disassembly tests).
    pub asm: String,
    /// Variable workspace slots.
    pub vars: HashMap<String, usize>,
    /// Workspace slots used in total (variables + deepest temporaries).
    pub workspace_slots: usize,
}

/// Compile an `occ` program. A trailing `halt` is appended if the program
/// does not end with one.
pub fn compile(src: &str) -> Result<Compiled, OccError> {
    let toks = lex(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while parser.peek().is_some() {
        stmts.push(parser.stmt()?);
    }
    let mut cg = Codegen {
        vars: HashMap::new(),
        next_slot: 0,
        max_slot: 0,
        label: 0,
        asm: String::new(),
    };
    cg.stmts(&stmts);
    if !matches!(stmts.last(), Some(Stmt::Halt)) {
        cg.emit("halt");
    }
    let code = assemble(&cg.asm).map_err(|e| OccError {
        line: 0,
        msg: format!("internal codegen error: {e}"),
    })?;
    Ok(Compiled {
        code,
        asm: cg.asm,
        vars: cg.vars,
        workspace_slots: cg.max_slot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::{load_code, Cp};
    use crate::StepOutcome;

    /// Compile, run, and return the named variables' final values.
    fn run(src: &str, want: &[(&str, i32)]) {
        let c = compile(src).expect("compile failed");
        let mut mem = vec![0u32; 16384];
        load_code(&mut mem, 8192, &c.code).unwrap();
        let mut cp = Cp::new(8192, 256);
        assert_eq!(cp.run(&mut mem, 10_000_000).unwrap(), StepOutcome::Halted);
        for (name, v) in want {
            let slot = c.vars[*name];
            assert_eq!(mem[256 + slot] as i32, *v, "{name} (asm:\n{})", c.asm);
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        run("x := 2 + 3 * 4; y := (2 + 3) * 4;", &[("x", 14), ("y", 20)]);
    }

    #[test]
    fn division_and_modulo() {
        run(
            "q := 17 / 5; r := 17 % 5; n := -17 / 5;",
            &[("q", 3), ("r", 2), ("n", -3)],
        );
    }

    #[test]
    fn comparisons() {
        run(
            "a := 3 > 2; b := 2 > 3; c := 3 == 3; d := 3 != 3; e := 2 <= 2; f := 2 < 2; g := 5 >= 6;",
            &[("a", 1), ("b", 0), ("c", 1), ("d", 0), ("e", 1), ("f", 0), ("g", 0)],
        );
    }

    #[test]
    fn while_loop_sum() {
        run(
            "x := 10; acc := 0; while x > 0 { acc := acc + x * x; x := x - 1; }",
            &[("acc", 385), ("x", 0)],
        );
    }

    #[test]
    fn if_else() {
        run(
            "x := 7; if x % 2 == 1 { kind := 1; } else { kind := 2; } \
             y := 8; if y % 2 == 1 { k2 := 1; } else { k2 := 2; }",
            &[("kind", 1), ("k2", 2)],
        );
    }

    #[test]
    fn gcd() {
        run(
            "a := 252; b := 105; while b != 0 { t := b; b := a % b; a := t; }",
            &[("a", 21)],
        );
    }

    #[test]
    fn collatz_steps() {
        run(
            "n := 27; steps := 0; \
             while n != 1 { \
               if n % 2 == 0 { n := n / 2; } else { n := 3 * n + 1; } \
               steps := steps + 1; \
             }",
            &[("steps", 111), ("n", 1)],
        );
    }

    #[test]
    fn deep_expressions_spill_correctly() {
        run(
            "x := ((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8)) - (9 * (10 + 11));",
            &[("x", 21 + 165 - 189)],
        );
    }

    #[test]
    fn unary_minus_and_bitwise() {
        run(
            "a := -5 + 3; b := 12 & 10; c := 12 | 3; d := 12 ^ 10; e := 1 << 10; f := 1024 >> 3;",
            &[
                ("a", -2),
                ("b", 8),
                ("c", 15),
                ("d", 6),
                ("e", 1024),
                ("f", 128),
            ],
        );
    }

    #[test]
    fn channel_send_compiles_to_out() {
        let c = compile("v := 42; send 3, v;").unwrap();
        assert!(c.asm.contains("out"));
        // Run until the yield and check the event.
        let mut mem = vec![0u32; 16384];
        load_code(&mut mem, 8192, &c.code).unwrap();
        let mut cp = Cp::new(8192, 256);
        match cp.run(&mut mem, 100_000).unwrap() {
            StepOutcome::Yielded(crate::CpEvent::Out { chan, ptr, words }) => {
                assert_eq!(chan, 3);
                assert_eq!(words, 1);
                assert_eq!(mem[ptr as usize], 42);
            }
            other => panic!("expected channel output, got {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_are_reported_with_lines() {
        let e = compile("x := ;").unwrap_err();
        assert_eq!(e.line, 1);
        let e = compile("x := 1;\ny := @;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(compile("while 1 { x := 1;").is_err(), "missing brace");
    }

    #[test]
    fn workspace_accounting() {
        let c = compile("a := 1; b := 2; c := (a + b) * (a - b);").unwrap();
        // 3 variables plus at least 2 live temporaries at the deepest point.
        assert!(c.workspace_slots >= 5, "{}", c.workspace_slots);
        assert!(c.workspace_slots < 16, "spills must be freed");
    }
}
