//! # ts-cp — the node's control processor
//!
//! §II *Control*: the T Series control unit is "a 32-bit CMOS
//! microprocessor" with a **stack-oriented instruction set with variable
//! operand sizes**, 7.5 MIPS, 2 KB of single-cycle on-chip RAM, 3-cycle
//! minimum off-chip access, four serial links, and Occam as its native
//! programming model. (Historically this is an Inmos transputer; the paper
//! never says so, and it specifies the ISA only by its character.)
//!
//! This crate implements a faithful **transputer-style** machine:
//!
//! * [`isa`] — three-register evaluation stack (A, B, C), workspace
//!   pointer, operand register, and the classic 4-bit-opcode/4-bit-operand
//!   encoding where `pfix`/`nfix` build large operands byte by byte:
//!   exactly the "variable operand sizes" the paper names.
//! * [`asm`] — a two-pass assembler with labels (iterating to a fixpoint,
//!   since operand length depends on label distance).
//! * [`emu`] — the emulator. It executes real programs against any
//!   [`CpBus`] (the node adapts its dual-ported memory), counts processor
//!   cycles with a cost table calibrated to the paper's **7.5 MIPS** and
//!   400 ns off-chip access, and *yields* at channel instructions so the
//!   embedding simulator can run the link protocol.
//!
//! The high-level kernels in `ts-kernels` do not compile to this ISA (the
//! paper's users wrote Occam, not assembler); the emulator exists to make
//! the control-processor substrate real — experiment E1 measures its
//! instruction rate, and the integration tests run gather loops and channel
//! programs on it.

#![deny(missing_docs)]

pub mod asm;
pub mod disasm;
pub mod emu;
pub mod isa;
pub mod occ;
pub mod programs;

pub use asm::{assemble, AsmError};
pub use disasm::{disassemble, listing};
pub use emu::{Cp, CpBus, CpError, CpEvent, StepOutcome, VecBus};
pub use isa::{Direct, Op, CP_CYCLE};
