//! Property tests for the control processor: encoding round-trips and
//! random straight-line programs against host arithmetic. Seeded random
//! cases via [`Rng`] (offline, reproducible).

use ts_cp::{assemble, emu::load_code, Cp, StepOutcome};
use ts_sim::Rng;

/// Run a program and return workspace slot 0.
fn run_program(src: &str) -> Result<u32, ts_cp::CpError> {
    let code = assemble(src).expect("assembly failed");
    let mut mem = vec![0u32; 8192];
    load_code(&mut mem, 4096, &code)?;
    let mut cp = Cp::new(4096, 256);
    match cp.run(&mut mem, 1_000_000)? {
        StepOutcome::Halted => Ok(mem[256]),
        other => panic!("unexpected outcome {other:?}"),
    }
}

/// ldc of any i32 round-trips through the prefix encoding.
#[test]
fn ldc_any_constant() {
    let mut rng = Rng::new(0xc2a0_0001);
    for _ in 0..128 {
        let v = rng.next_u32() as i32;
        let got = run_program(&format!("ldc {v}\nstl 0\nhalt\n")).unwrap();
        assert_eq!(got as i32, v);
    }
}

/// Host-side model of one ALU op: `None` marks the undefined (trapping)
/// divide-by-zero cases.
type HostOp = fn(i32, i32) -> Option<i32>;

/// Binary ALU operations match host semantics.
#[test]
fn alu_matches_host() {
    let mut rng = Rng::new(0xc2a0_0002);
    for _ in 0..256 {
        let a = rng.next_u32() as i32;
        let b = rng.next_u32() as i32;
        let op = rng.range(0, 9);
        let (name, host): (&str, HostOp) = match op {
            0 => ("add", |x, y| Some(x.wrapping_add(y))),
            1 => ("sub", |x, y| Some(x.wrapping_sub(y))),
            2 => ("mul", |x, y| Some(x.wrapping_mul(y))),
            3 => ("div", |x, y| (y != 0).then(|| x.wrapping_div(y))),
            4 => ("rem", |x, y| (y != 0).then(|| x.wrapping_rem(y))),
            5 => ("and", |x, y| Some(x & y)),
            6 => ("or", |x, y| Some(x | y)),
            7 => ("xor", |x, y| Some(x ^ y)),
            _ => ("gt", |x, y| Some((x > y) as i32)),
        };
        // Stack order: push a, push b, then OP computes `a OP b`
        // (B OP A with A = b on top).
        let src = format!("ldc {a}\nldc {b}\n{name}\nstl 0\nhalt\n");
        match host(a, b) {
            Some(want) => {
                let got = run_program(&src).unwrap();
                assert_eq!(got as i32, want, "{a} {name} {b}");
            }
            None => {
                assert!(matches!(run_program(&src), Err(ts_cp::CpError::DivByZero)));
            }
        }
    }
}

/// adc (add constant) on random values.
#[test]
fn adc_matches_host() {
    let mut rng = Rng::new(0xc2a0_0003);
    for _ in 0..128 {
        let a = rng.next_u32() as i32;
        let k = rng.next_u32() as i32;
        let got = run_program(&format!("ldc {a}\nadc {k}\nstl 0\nhalt\n")).unwrap();
        assert_eq!(got as i32, a.wrapping_add(k));
    }
}

/// Shifts with in-range counts.
#[test]
fn shifts_match_host() {
    let mut rng = Rng::new(0xc2a0_0004);
    for _ in 0..128 {
        let a = rng.next_u32();
        let s = rng.below(32) as u32;
        let shl = run_program(&format!("ldc {}\nldc {s}\nshl\nstl 0\nhalt\n", a as i32)).unwrap();
        assert_eq!(shl, a.wrapping_shl(s));
        let shr = run_program(&format!("ldc {}\nldc {s}\nshr\nstl 0\nhalt\n", a as i32)).unwrap();
        assert_eq!(shr, a.wrapping_shr(s));
    }
}

/// A counted loop executes exactly n iterations for any small n.
#[test]
fn counted_loop() {
    let mut rng = Rng::new(0xc2a0_0005);
    for _ in 0..32 {
        let n = 1 + rng.below(499) as u32;
        let src = format!(
            "ldc 0\nstl 0\nldc {n}\nstl 1\n\
             loop:\nldl 0\nadc 1\nstl 0\nldl 1\nadc -1\nstl 1\nldl 1\neqc 0\ncj loop\nhalt\n"
        );
        assert_eq!(run_program(&src).unwrap(), n);
    }
}

/// Random local-variable traffic: a store/load shuffle preserves values.
#[test]
fn workspace_traffic() {
    let mut rng = Rng::new(0xc2a0_0006);
    for _ in 0..64 {
        let vals: Vec<i32> = (0..rng.range(1, 12))
            .map(|_| rng.next_u32() as i32)
            .collect();
        let mut src = String::new();
        for (i, v) in vals.iter().enumerate() {
            src.push_str(&format!("ldc {v}\nstl {i}\n"));
        }
        // Sum them all back into slot 0.
        src.push_str("ldc 0\n");
        for i in 0..vals.len() {
            src.push_str(&format!("ldl {i}\nadd\n"));
        }
        src.push_str("stl 0\nhalt\n");
        let want = vals.iter().fold(0i32, |a, &b| a.wrapping_add(b));
        assert_eq!(run_program(&src).unwrap() as i32, want);
    }
}

/// Disassembling any assembled program and reassembling the listing
/// reproduces the bytes exactly.
#[test]
fn disasm_roundtrip() {
    let mut rng = Rng::new(0xc2a0_0007);
    for _ in 0..64 {
        let consts: Vec<i32> = (0..rng.range(1, 20))
            .map(|_| rng.next_u32() as i32)
            .collect();
        let mut src = String::new();
        for (i, v) in consts.iter().enumerate() {
            src.push_str(&format!("ldc {v}\nstl {}\n", i % 16));
        }
        src.push_str("halt\n");
        let code = assemble(&src).unwrap();
        let text: String = ts_cp::disasm::disassemble(&code)
            .iter()
            .map(|d| format!("{}\n", d.insn))
            .collect();
        let code2 = assemble(&text).unwrap();
        assert_eq!(code, code2);
    }
}

/// Random `occ` expression trees evaluate exactly like host i32 arithmetic
/// (wrapping, C-style truncating division).
#[test]
fn occ_expressions_match_host() {
    let mut rng = Rng::new(0xc2a0_0008);
    for _ in 0..64 {
        let seed = rng.next_u32() as i32;
        let ops: Vec<(usize, i32)> = (0..rng.range(1, 12))
            .map(|_| (rng.range(0, 6), rng.below(100) as i32 - 50))
            .collect();
        // Build a left-leaning expression with random operators and
        // operands, avoiding division by zero syntactically.
        let mut src = format!("x := {seed};\n");
        let mut expected = seed;
        for (op, raw) in ops {
            let (sym, val): (&str, i32) = match op {
                0 => ("+", raw),
                1 => ("-", raw),
                2 => ("*", raw % 7),
                3 => ("/", if raw.abs() % 9 == 0 { 3 } else { raw.abs() % 9 }),
                4 => ("&", raw),
                _ => ("^", raw),
            };
            src.push_str(&format!("x := x {sym} {val};\n"));
            expected = match sym {
                "+" => expected.wrapping_add(val),
                "-" => expected.wrapping_sub(val),
                "*" => expected.wrapping_mul(val),
                "/" => expected.wrapping_div(val),
                "&" => expected & val,
                _ => expected ^ val,
            };
        }
        let c = ts_cp::occ::compile(&src).unwrap();
        let mut mem = vec![0u32; 16384];
        load_code(&mut mem, 8192, &c.code).unwrap();
        let mut cp = Cp::new(8192, 256);
        cp.run(&mut mem, 10_000_000).unwrap();
        assert_eq!(mem[256 + c.vars["x"]] as i32, expected);
    }
}

/// The timing model stays in a plausible MIPS band for arbitrary ALU-heavy
/// programs (no memory-free program can be slower than the divide-bound
/// floor or faster than 1 cycle/instruction).
#[test]
fn mips_band() {
    let mut rng = Rng::new(0xc2a0_0009);
    for _ in 0..64 {
        let ops: Vec<usize> = (0..rng.range(10, 100)).map(|_| rng.range(0, 5)).collect();
        let mut src = String::from("ldc 1\n");
        for &o in &ops {
            let name = ["dup", "not", "mint", "dup\nadd", "dup\nxor"][o];
            src.push_str(name);
            src.push('\n');
        }
        src.push_str("stl 0\nhalt\n");
        let code = assemble(&src).unwrap();
        let mut mem = vec![0u32; 8192];
        load_code(&mut mem, 4096, &code).unwrap();
        let mut cp = Cp::new(4096, 256);
        cp.run(&mut mem, 1_000_000).unwrap();
        let mips = cp.mips();
        assert!(mips > 1.0 && mips <= 15.0, "mips = {mips}");
    }
}
