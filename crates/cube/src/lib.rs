//! # ts-cube — the binary n-cube interconnect
//!
//! The T Series connects its 2ⁿ nodes as a **binary n-cube** (§III): node
//! numbers differ from each neighbour's in exactly one bit, so the maximum
//! distance between any two processors is n = log₂ p hops — the paper's
//! "long-range communication costs grow only as O(log₂ n)".
//!
//! This crate is the pure combinatorics of that interconnect, with no
//! simulation dependencies:
//!
//! * [`Hypercube`] — neighbours, Hamming distance, **e-cube** (dimension
//!   ordered, deadlock-free) routing, binomial spanning trees for
//!   collectives, and subcube/module decomposition.
//! * [`gray`]/[`gray_inv`] — the reflected binary Gray code, the classical
//!   tool for embedding sequenced topologies into a cube.
//! * [`embed`] — the Figure 3 menagerie: rings, multi-dimensional meshes
//!   (up to dimension n), toroids, and the radix-2 **FFT butterfly**, each
//!   with a dilation check (every logical edge maps onto a physical cube
//!   edge).
//! * [`SublinkBudget`] — the paper's link arithmetic: 4 links × 4-way
//!   multiplexing = 16 sublinks per node; 2 reserved for system
//!   communication, 2 for mass storage / external I/O, 3 consumed inside
//!   the 8-node module — which is why a 14-cube is the architectural
//!   maximum and a 12-cube (4096 nodes) the largest practical machine.

#![deny(missing_docs)]

pub mod embed;

/// A node address in an n-cube: an integer in `0..2^n`.
pub type NodeId = u32;

/// The binary n-cube: topology queries over `2^dim` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// The largest configuration the T Series supports (§III: "There are
    /// enough links per node to permit a 14-cube to be constructed").
    pub const MAX_DIM: u32 = 14;

    /// Create an n-cube. Panics if `dim > 14` (the architecture's limit) —
    /// use a plain newtype if you need bigger abstract cubes.
    pub fn new(dim: u32) -> Hypercube {
        assert!(dim <= Self::MAX_DIM, "T Series cubes end at dimension 14");
        Hypercube { dim }
    }

    /// Cube dimension n.
    pub const fn dim(self) -> u32 {
        self.dim
    }

    /// Number of nodes, 2ⁿ.
    pub const fn nodes(self) -> u32 {
        1 << self.dim
    }

    /// Iterate all node ids.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        0..self.nodes()
    }

    /// The neighbour across dimension `d`.
    pub fn neighbor(self, node: NodeId, d: u32) -> NodeId {
        debug_assert!(d < self.dim && node < self.nodes());
        node ^ (1 << d)
    }

    /// All neighbours of `node`, in dimension order.
    pub fn neighbors(self, node: NodeId) -> impl Iterator<Item = NodeId> {
        (0..self.dim).map(move |d| node ^ (1 << d))
    }

    /// Hamming distance — the minimum hop count between two nodes.
    pub fn distance(self, a: NodeId, b: NodeId) -> u32 {
        (a ^ b).count_ones()
    }

    /// The network diameter, n.
    pub const fn diameter(self) -> u32 {
        self.dim
    }

    /// E-cube (dimension-ordered) route from `a` to `b`, inclusive of both
    /// endpoints. Correcting bits lowest-first is deadlock-free under
    /// wormhole or store-and-forward switching because the dimension
    /// sequence is strictly increasing along every path.
    pub fn route(self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.distance(a, b) as usize + 1);
        let mut cur = a;
        path.push(cur);
        let diff = a ^ b;
        for d in 0..self.dim {
            if diff & (1 << d) != 0 {
                cur ^= 1 << d;
                path.push(cur);
            }
        }
        debug_assert_eq!(cur, b);
        path
    }

    /// The dimensions (lowest first) an e-cube route out of `a` towards `b`
    /// crosses.
    pub fn route_dims(self, a: NodeId, b: NodeId) -> impl Iterator<Item = u32> {
        let diff = a ^ b;
        (0..self.dim).filter(move |d| diff & (1 << d) != 0)
    }

    /// Binomial spanning tree rooted at `root`: returns `parent[node]`
    /// (with `parent[root] = root`). The tree edge for node v is across the
    /// *lowest* set bit of `v ^ root`, so a broadcast completes in n steps —
    /// the schedule every collective in `t-series-core` uses.
    pub fn binomial_parent(self, root: NodeId, node: NodeId) -> NodeId {
        if node == root {
            return root;
        }
        let diff = node ^ root;
        node ^ (1 << diff.trailing_zeros())
    }

    /// Children of `node` in the binomial tree rooted at `root`: the
    /// neighbours across each dimension *below* the lowest set bit of
    /// `node ^ root` (all dimensions for the root itself).
    pub fn binomial_children(self, root: NodeId, node: NodeId) -> Vec<NodeId> {
        let limit = if node == root { self.dim } else { (node ^ root).trailing_zeros() };
        (0..limit).map(|d| node ^ (1 << d)).collect()
    }

    /// The module a node belongs to: the T Series packages 8 nodes
    /// (a 3-subcube spanning the three lowest dimensions) per module (§III).
    pub fn module_of(self, node: NodeId) -> u32 {
        node >> 3
    }

    /// Number of 8-node modules (at least 1; sub-module cubes still occupy
    /// one physical module).
    pub fn modules(self) -> u32 {
        if self.dim <= 3 {
            1
        } else {
            1 << (self.dim - 3)
        }
    }

    /// Number of 16-node cabinets (two modules each, a "tesseract"; §III).
    pub fn cabinets(self) -> u32 {
        self.modules().div_ceil(2)
    }
}

/// The reflected binary Gray code: consecutive integers map to words that
/// differ in exactly one bit.
#[inline]
pub const fn gray(i: u32) -> u32 {
    i ^ (i >> 1)
}

/// Inverse Gray code: `gray_inv(gray(i)) == i`.
#[inline]
pub const fn gray_inv(g: u32) -> u32 {
    let mut i = g;
    let mut shift = g;
    while shift != 0 {
        shift >>= 1;
        i ^= shift;
    }
    i
}

/// The paper's per-node sublink budget (§II *Communications*, §III).
///
/// Each node has 4 bidirectional serial links, each multiplexed 4 ways:
/// 16 sublinks. The standard allocation reserves 2 for the system thread,
/// 2 for mass storage / external I/O, and uses 3 inside the module's
/// 3-subcube, leaving the rest for the inter-module hypercube.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SublinkBudget {
    /// Sublinks reserved for system-board communication (paper: 2).
    pub system: u32,
    /// Sublinks reserved for mass storage and external I/O (paper: 2).
    pub io: u32,
}

impl Default for SublinkBudget {
    fn default() -> Self {
        SublinkBudget { system: 2, io: 2 }
    }
}

impl SublinkBudget {
    /// Physical links per node.
    pub const LINKS: u32 = 4;
    /// Multiplex factor per link.
    pub const SUBLINKS_PER_LINK: u32 = 4;
    /// Total sublinks per node: 16.
    pub const TOTAL: u32 = Self::LINKS * Self::SUBLINKS_PER_LINK;

    /// Sublinks left for hypercube edges (intra- plus inter-module).
    pub fn for_hypercube(self) -> u32 {
        Self::TOTAL - self.system - self.io
    }

    /// The largest cube dimension this allocation supports.
    ///
    /// With the paper's defaults: 16 − 2 − 2 = 12 → a 12-cube of 4096
    /// nodes. Without the I/O reservation: 16 − 2 = 14 → the architectural
    /// 14-cube maximum.
    pub fn max_dim(self) -> u32 {
        self.for_hypercube().min(Hypercube::MAX_DIM)
    }

    /// Validate a machine configuration against the budget.
    pub fn supports(self, dim: u32) -> bool {
        dim <= self.max_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_sizes() {
        // N = 0 point, 1 line, 2 square, 3 cube, 4 tesseract.
        for (dim, nodes) in [(0u32, 1u32), (1, 2), (2, 4), (3, 8), (4, 16)] {
            assert_eq!(Hypercube::new(dim).nodes(), nodes);
        }
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let c = Hypercube::new(4);
        for node in c.iter() {
            let ns: Vec<_> = c.neighbors(node).collect();
            assert_eq!(ns.len(), 4);
            for n in ns {
                assert_eq!(c.distance(node, n), 1);
            }
        }
    }

    #[test]
    fn route_is_shortest_and_dimension_ordered() {
        let c = Hypercube::new(5);
        let (a, b) = (0b10110, 0b01011);
        let path = c.route(a, b);
        assert_eq!(path.len() as u32, c.distance(a, b) + 1);
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        let mut last_dim = None;
        for w in path.windows(2) {
            let d = (w[0] ^ w[1]).trailing_zeros();
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
            assert!(last_dim.is_none_or(|ld| d > ld), "dimension order violated");
            last_dim = Some(d);
        }
    }

    #[test]
    fn diameter_is_log2_p() {
        for dim in 0..=10 {
            let c = Hypercube::new(dim);
            let far = c.nodes() - 1; // all-ones is farthest from 0
            assert_eq!(c.distance(0, far), dim);
            assert_eq!(c.diameter(), dim);
        }
    }

    #[test]
    fn gray_code_adjacency() {
        for i in 0..(1u32 << 12) - 1 {
            let d = gray(i) ^ gray(i + 1);
            assert_eq!(d.count_ones(), 1, "gray({i})..gray({})", i + 1);
        }
    }

    #[test]
    fn gray_code_bijective_and_inverse() {
        let mut seen = vec![false; 1 << 12];
        for i in 0..1u32 << 12 {
            let g = gray(i);
            assert!(!seen[g as usize]);
            seen[g as usize] = true;
            assert_eq!(gray_inv(g), i);
        }
    }

    #[test]
    fn binomial_tree_spans_and_respects_edges() {
        let c = Hypercube::new(6);
        let root = 13;
        for node in c.iter() {
            let p = c.binomial_parent(root, node);
            if node == root {
                assert_eq!(p, root);
            } else {
                assert_eq!(c.distance(node, p), 1, "tree edge is a cube edge");
                // Walking parents must reach the root (no cycles).
                let mut cur = node;
                let mut hops = 0;
                while cur != root {
                    cur = c.binomial_parent(root, cur);
                    hops += 1;
                    assert!(hops <= 6);
                }
            }
        }
    }

    #[test]
    fn binomial_children_match_parents() {
        let c = Hypercube::new(5);
        for root in [0u32, 7, 31] {
            for node in c.iter() {
                for ch in c.binomial_children(root, node) {
                    assert_eq!(c.binomial_parent(root, ch), node);
                }
            }
        }
    }

    #[test]
    fn broadcast_depth_is_dim() {
        // Longest root-to-leaf path in the binomial tree = n.
        let c = Hypercube::new(7);
        let root = 0;
        let mut max_depth = 0;
        for node in c.iter() {
            let mut cur = node;
            let mut d = 0;
            while cur != root {
                cur = c.binomial_parent(root, cur);
                d += 1;
            }
            max_depth = max_depth.max(d);
        }
        assert_eq!(max_depth, 7);
    }

    #[test]
    fn modules_and_cabinets() {
        // §III: 8 nodes/module, 2 modules (16 nodes) per cabinet.
        let c = Hypercube::new(6); // 64 nodes
        assert_eq!(c.modules(), 8);
        assert_eq!(c.cabinets(), 4);
        assert_eq!(c.module_of(0), 0);
        assert_eq!(c.module_of(7), 0);
        assert_eq!(c.module_of(8), 1);
        // Intramodule edges span the three lowest dimensions only.
        for node in c.iter() {
            for d in 0..3 {
                assert_eq!(c.module_of(node), c.module_of(c.neighbor(node, d)));
            }
        }
        // The 12-cube: 4096 nodes, 512 modules, 256 cabinets (paper's max).
        let max = Hypercube::new(12);
        assert_eq!(max.nodes(), 4096);
        assert_eq!(max.modules(), 512);
        assert_eq!(max.cabinets(), 256);
    }

    #[test]
    fn sublink_budget_paper_numbers() {
        let b = SublinkBudget::default();
        assert_eq!(SublinkBudget::TOTAL, 16);
        assert_eq!(b.for_hypercube(), 12);
        assert_eq!(b.max_dim(), 12, "largest practical machine is a 12-cube");
        assert!(b.supports(12));
        assert!(!b.supports(13));
        // Without the I/O reservation the architecture tops out at 14.
        let no_io = SublinkBudget { system: 2, io: 0 };
        assert_eq!(no_io.max_dim(), 14);
    }

    #[test]
    #[should_panic(expected = "dimension 14")]
    fn fifteen_cube_rejected() {
        let _ = Hypercube::new(15);
    }
}
