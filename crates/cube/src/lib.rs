//! # ts-cube — the binary n-cube interconnect
//!
//! The T Series connects its 2ⁿ nodes as a **binary n-cube** (§III): node
//! numbers differ from each neighbour's in exactly one bit, so the maximum
//! distance between any two processors is n = log₂ p hops — the paper's
//! "long-range communication costs grow only as O(log₂ n)".
//!
//! This crate is the pure combinatorics of that interconnect, with no
//! simulation dependencies:
//!
//! * [`Hypercube`] — neighbours, Hamming distance, **e-cube** (dimension
//!   ordered, deadlock-free) routing, binomial spanning trees for
//!   collectives, and subcube/module decomposition.
//! * [`gray`]/[`gray_inv`] — the reflected binary Gray code, the classical
//!   tool for embedding sequenced topologies into a cube.
//! * [`embed`] — the Figure 3 menagerie: rings, multi-dimensional meshes
//!   (up to dimension n), toroids, and the radix-2 **FFT butterfly**, each
//!   with a dilation check (every logical edge maps onto a physical cube
//!   edge).
//! * [`SublinkBudget`] — the paper's link arithmetic: 4 links × 4-way
//!   multiplexing = 16 sublinks per node; 2 reserved for system
//!   communication, 2 for mass storage / external I/O, 3 consumed inside
//!   the 8-node module — which is why a 14-cube is the architectural
//!   maximum and a 12-cube (4096 nodes) the largest practical machine.

#![deny(missing_docs)]

pub mod embed;

/// A node address in an n-cube: an integer in `0..2^n`.
pub type NodeId = u32;

/// The binary n-cube: topology queries over `2^dim` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// The largest configuration the T Series supports (§III: "There are
    /// enough links per node to permit a 14-cube to be constructed").
    pub const MAX_DIM: u32 = 14;

    /// Create an n-cube. Panics if `dim > 14` (the architecture's limit) —
    /// use a plain newtype if you need bigger abstract cubes.
    pub fn new(dim: u32) -> Hypercube {
        assert!(dim <= Self::MAX_DIM, "T Series cubes end at dimension 14");
        Hypercube { dim }
    }

    /// Cube dimension n.
    pub const fn dim(self) -> u32 {
        self.dim
    }

    /// Number of nodes, 2ⁿ.
    pub const fn nodes(self) -> u32 {
        1 << self.dim
    }

    /// Iterate all node ids.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        0..self.nodes()
    }

    /// The neighbour across dimension `d`.
    pub fn neighbor(self, node: NodeId, d: u32) -> NodeId {
        debug_assert!(d < self.dim && node < self.nodes());
        node ^ (1 << d)
    }

    /// All neighbours of `node`, in dimension order.
    pub fn neighbors(self, node: NodeId) -> impl Iterator<Item = NodeId> {
        (0..self.dim).map(move |d| node ^ (1 << d))
    }

    /// Hamming distance — the minimum hop count between two nodes.
    pub fn distance(self, a: NodeId, b: NodeId) -> u32 {
        (a ^ b).count_ones()
    }

    /// The network diameter, n.
    pub const fn diameter(self) -> u32 {
        self.dim
    }

    /// E-cube (dimension-ordered) route from `a` to `b`, inclusive of both
    /// endpoints. Correcting bits lowest-first is deadlock-free under
    /// wormhole or store-and-forward switching because the dimension
    /// sequence is strictly increasing along every path.
    pub fn route(self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.distance(a, b) as usize + 1);
        let mut cur = a;
        path.push(cur);
        let diff = a ^ b;
        for d in 0..self.dim {
            if diff & (1 << d) != 0 {
                cur ^= 1 << d;
                path.push(cur);
            }
        }
        debug_assert_eq!(cur, b);
        path
    }

    /// The dimensions (lowest first) an e-cube route out of `a` towards `b`
    /// crosses.
    pub fn route_dims(self, a: NodeId, b: NodeId) -> impl Iterator<Item = u32> {
        let diff = a ^ b;
        (0..self.dim).filter(move |d| diff & (1 << d) != 0)
    }

    /// Binomial spanning tree rooted at `root`: returns `parent[node]`
    /// (with `parent[root] = root`). The tree edge for node v is across the
    /// *lowest* set bit of `v ^ root`, so a broadcast completes in n steps —
    /// the schedule every collective in `t-series-core` uses.
    pub fn binomial_parent(self, root: NodeId, node: NodeId) -> NodeId {
        if node == root {
            return root;
        }
        let diff = node ^ root;
        node ^ (1 << diff.trailing_zeros())
    }

    /// Children of `node` in the binomial tree rooted at `root`: the
    /// neighbours across each dimension *below* the lowest set bit of
    /// `node ^ root` (all dimensions for the root itself).
    pub fn binomial_children(self, root: NodeId, node: NodeId) -> Vec<NodeId> {
        let limit = if node == root {
            self.dim
        } else {
            (node ^ root).trailing_zeros()
        };
        (0..limit).map(|d| node ^ (1 << d)).collect()
    }

    /// The module a node belongs to: the T Series packages 8 nodes
    /// (a 3-subcube spanning the three lowest dimensions) per module (§III).
    pub fn module_of(self, node: NodeId) -> u32 {
        node >> 3
    }

    /// Number of 8-node modules (at least 1; sub-module cubes still occupy
    /// one physical module).
    pub fn modules(self) -> u32 {
        if self.dim <= 3 {
            1
        } else {
            1 << (self.dim - 3)
        }
    }

    /// Number of 16-node cabinets (two modules each, a "tesseract"; §III).
    pub fn cabinets(self) -> u32 {
        self.modules().div_ceil(2)
    }
}

/// A d-dimensional subcube of a larger n-cube: the set of nodes reachable
/// from `base` by flipping any subset of the `dims` address bits.
///
/// Disjoint subcubes are complete hypercubes in their own right, which is
/// what makes the machine *space-shareable* (§III: the n-cube is built from
/// 8-node modules that are themselves 3-subcubes): independent jobs can run
/// on disjoint subcubes with full isolation, because every edge of a
/// subcube is a physical cube edge and no route between two of its nodes
/// leaves it (e-cube routing only corrects bits the endpoints differ in).
///
/// The subcube relabels its nodes: **virtual** id `v ∈ 0..2^d` maps to the
/// physical id `base ^ spread(v)`, where bit `k` of `v` lands on physical
/// address bit `dims[k]`. Virtual dimension `k` is physical dimension
/// `dims[k]`. A program written against virtual ids and dimensions (every
/// collective and kernel in this workspace) therefore runs unmodified
/// inside any subcube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Subcube {
    base: NodeId,
    dims: Vec<u32>,
}

impl Subcube {
    /// A subcube of `base` spanning the given address bits. `base` must
    /// have every spanned bit clear (the canonical corner), and `dims`
    /// must be strictly increasing.
    pub fn new(base: NodeId, dims: Vec<u32>) -> Subcube {
        assert!(
            dims.windows(2).all(|w| w[0] < w[1]),
            "dims must be strictly increasing"
        );
        for &d in &dims {
            assert!(
                base & (1 << d) == 0,
                "base must sit at the subcube's low corner"
            );
        }
        Subcube { base, dims }
    }

    /// The aligned d-subcube spanning dimensions `0..d` at `base` (the
    /// shape the buddy allocator hands out: `base` is a multiple of `2^d`).
    pub fn aligned(base: NodeId, d: u32) -> Subcube {
        assert_eq!(
            base % (1 << d),
            0,
            "aligned subcube base must be a multiple of 2^d"
        );
        Subcube::new(base, (0..d).collect())
    }

    /// The subcube's low corner (physical id of virtual node 0).
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// The spanned physical dimensions, lowest first (virtual dimension
    /// `k` rides physical dimension `dims()[k]`).
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Subcube dimension d.
    pub fn dim(&self) -> u32 {
        self.dims.len() as u32
    }

    /// Number of nodes, 2^d.
    pub fn len(&self) -> u32 {
        1 << self.dim()
    }

    /// Always false: even a 0-subcube holds one node. Provided because
    /// [`Subcube::len`] exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The subcube as a standalone hypercube (for collectives and routing
    /// in virtual coordinates).
    pub fn cube(&self) -> Hypercube {
        Hypercube::new(self.dim())
    }

    /// Physical id of virtual node `v`: XOR the base with `v`'s bits
    /// spread onto the spanned dimensions.
    pub fn to_phys(&self, v: NodeId) -> NodeId {
        debug_assert!(v < self.len());
        let mut p = self.base;
        for (k, &d) in self.dims.iter().enumerate() {
            if v & (1 << k) != 0 {
                p ^= 1 << d;
            }
        }
        p
    }

    /// Virtual id of physical node `p`, or `None` if `p` is outside the
    /// subcube.
    pub fn to_virt(&self, p: NodeId) -> Option<NodeId> {
        let diff = p ^ self.base;
        let mut v = 0;
        let mut covered = 0;
        for (k, &d) in self.dims.iter().enumerate() {
            if diff & (1 << d) != 0 {
                v |= 1 << k;
            }
            covered |= 1 << d;
        }
        if diff & !covered != 0 {
            return None;
        }
        Some(v)
    }

    /// True if physical node `p` belongs to the subcube.
    pub fn contains(&self, p: NodeId) -> bool {
        self.to_virt(p).is_some()
    }

    /// Physical node ids in virtual order (index = virtual id).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(|v| self.to_phys(v))
    }

    /// True if every node of the subcube lives in one 8-node module — the
    /// module-affinity property: an intramodule job keeps all its traffic
    /// on the short in-module wires. Aligned subcubes of dimension ≤ 3
    /// always satisfy this.
    pub fn within_one_module(&self) -> bool {
        let m = self.base >> 3;
        self.iter().all(|p| p >> 3 == m)
    }

    /// True if the two subcubes share no node: the bases must differ on
    /// some dimension spanned by neither (on spanned dimensions both sides
    /// can reach either value, so only unspanned bits separate them).
    pub fn disjoint(&self, other: &Subcube) -> bool {
        let mut covered = 0u32;
        for &d in self.dims.iter().chain(&other.dims) {
            covered |= 1 << d;
        }
        (self.base ^ other.base) & !covered != 0
    }
}

/// The reflected binary Gray code: consecutive integers map to words that
/// differ in exactly one bit.
#[inline]
pub const fn gray(i: u32) -> u32 {
    i ^ (i >> 1)
}

/// Inverse Gray code: `gray_inv(gray(i)) == i`.
#[inline]
pub const fn gray_inv(g: u32) -> u32 {
    let mut i = g;
    let mut shift = g;
    while shift != 0 {
        shift >>= 1;
        i ^= shift;
    }
    i
}

/// The paper's per-node sublink budget (§II *Communications*, §III).
///
/// Each node has 4 bidirectional serial links, each multiplexed 4 ways:
/// 16 sublinks. The standard allocation reserves 2 for the system thread,
/// 2 for mass storage / external I/O, and uses 3 inside the module's
/// 3-subcube, leaving the rest for the inter-module hypercube.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SublinkBudget {
    /// Sublinks reserved for system-board communication (paper: 2).
    pub system: u32,
    /// Sublinks reserved for mass storage and external I/O (paper: 2).
    pub io: u32,
}

impl Default for SublinkBudget {
    fn default() -> Self {
        SublinkBudget { system: 2, io: 2 }
    }
}

impl SublinkBudget {
    /// Physical links per node.
    pub const LINKS: u32 = 4;
    /// Multiplex factor per link.
    pub const SUBLINKS_PER_LINK: u32 = 4;
    /// Total sublinks per node: 16.
    pub const TOTAL: u32 = Self::LINKS * Self::SUBLINKS_PER_LINK;

    /// Sublinks left for hypercube edges (intra- plus inter-module).
    pub fn for_hypercube(self) -> u32 {
        Self::TOTAL - self.system - self.io
    }

    /// The largest cube dimension this allocation supports.
    ///
    /// With the paper's defaults: 16 − 2 − 2 = 12 → a 12-cube of 4096
    /// nodes. Without the I/O reservation: 16 − 2 = 14 → the architectural
    /// 14-cube maximum.
    pub fn max_dim(self) -> u32 {
        self.for_hypercube().min(Hypercube::MAX_DIM)
    }

    /// Validate a machine configuration against the budget.
    pub fn supports(self, dim: u32) -> bool {
        dim <= self.max_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_sizes() {
        // N = 0 point, 1 line, 2 square, 3 cube, 4 tesseract.
        for (dim, nodes) in [(0u32, 1u32), (1, 2), (2, 4), (3, 8), (4, 16)] {
            assert_eq!(Hypercube::new(dim).nodes(), nodes);
        }
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let c = Hypercube::new(4);
        for node in c.iter() {
            let ns: Vec<_> = c.neighbors(node).collect();
            assert_eq!(ns.len(), 4);
            for n in ns {
                assert_eq!(c.distance(node, n), 1);
            }
        }
    }

    #[test]
    fn route_is_shortest_and_dimension_ordered() {
        let c = Hypercube::new(5);
        let (a, b) = (0b10110, 0b01011);
        let path = c.route(a, b);
        assert_eq!(path.len() as u32, c.distance(a, b) + 1);
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        let mut last_dim = None;
        for w in path.windows(2) {
            let d = (w[0] ^ w[1]).trailing_zeros();
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
            assert!(last_dim.is_none_or(|ld| d > ld), "dimension order violated");
            last_dim = Some(d);
        }
    }

    #[test]
    fn diameter_is_log2_p() {
        for dim in 0..=10 {
            let c = Hypercube::new(dim);
            let far = c.nodes() - 1; // all-ones is farthest from 0
            assert_eq!(c.distance(0, far), dim);
            assert_eq!(c.diameter(), dim);
        }
    }

    #[test]
    fn gray_code_adjacency() {
        for i in 0..(1u32 << 12) - 1 {
            let d = gray(i) ^ gray(i + 1);
            assert_eq!(d.count_ones(), 1, "gray({i})..gray({})", i + 1);
        }
    }

    #[test]
    fn gray_code_bijective_and_inverse() {
        let mut seen = vec![false; 1 << 12];
        for i in 0..1u32 << 12 {
            let g = gray(i);
            assert!(!seen[g as usize]);
            seen[g as usize] = true;
            assert_eq!(gray_inv(g), i);
        }
    }

    #[test]
    fn binomial_tree_spans_and_respects_edges() {
        let c = Hypercube::new(6);
        let root = 13;
        for node in c.iter() {
            let p = c.binomial_parent(root, node);
            if node == root {
                assert_eq!(p, root);
            } else {
                assert_eq!(c.distance(node, p), 1, "tree edge is a cube edge");
                // Walking parents must reach the root (no cycles).
                let mut cur = node;
                let mut hops = 0;
                while cur != root {
                    cur = c.binomial_parent(root, cur);
                    hops += 1;
                    assert!(hops <= 6);
                }
            }
        }
    }

    #[test]
    fn binomial_children_match_parents() {
        let c = Hypercube::new(5);
        for root in [0u32, 7, 31] {
            for node in c.iter() {
                for ch in c.binomial_children(root, node) {
                    assert_eq!(c.binomial_parent(root, ch), node);
                }
            }
        }
    }

    #[test]
    fn broadcast_depth_is_dim() {
        // Longest root-to-leaf path in the binomial tree = n.
        let c = Hypercube::new(7);
        let root = 0;
        let mut max_depth = 0;
        for node in c.iter() {
            let mut cur = node;
            let mut d = 0;
            while cur != root {
                cur = c.binomial_parent(root, cur);
                d += 1;
            }
            max_depth = max_depth.max(d);
        }
        assert_eq!(max_depth, 7);
    }

    #[test]
    fn modules_and_cabinets() {
        // §III: 8 nodes/module, 2 modules (16 nodes) per cabinet.
        let c = Hypercube::new(6); // 64 nodes
        assert_eq!(c.modules(), 8);
        assert_eq!(c.cabinets(), 4);
        assert_eq!(c.module_of(0), 0);
        assert_eq!(c.module_of(7), 0);
        assert_eq!(c.module_of(8), 1);
        // Intramodule edges span the three lowest dimensions only.
        for node in c.iter() {
            for d in 0..3 {
                assert_eq!(c.module_of(node), c.module_of(c.neighbor(node, d)));
            }
        }
        // The 12-cube: 4096 nodes, 512 modules, 256 cabinets (paper's max).
        let max = Hypercube::new(12);
        assert_eq!(max.nodes(), 4096);
        assert_eq!(max.modules(), 512);
        assert_eq!(max.cabinets(), 256);
    }

    #[test]
    fn sublink_budget_paper_numbers() {
        let b = SublinkBudget::default();
        assert_eq!(SublinkBudget::TOTAL, 16);
        assert_eq!(b.for_hypercube(), 12);
        assert_eq!(b.max_dim(), 12, "largest practical machine is a 12-cube");
        assert!(b.supports(12));
        assert!(!b.supports(13));
        // Without the I/O reservation the architecture tops out at 14.
        let no_io = SublinkBudget { system: 2, io: 0 };
        assert_eq!(no_io.max_dim(), 14);
    }

    #[test]
    #[should_panic(expected = "dimension 14")]
    fn fifteen_cube_rejected() {
        let _ = Hypercube::new(15);
    }

    #[test]
    fn subcube_relabeling_round_trips() {
        // A 2-subcube of a 4-cube on dimensions {1, 3} at base 0b0101.
        let s = Subcube::new(0b0101, vec![1, 3]);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.len(), 4);
        let phys: Vec<NodeId> = s.iter().collect();
        assert_eq!(phys, vec![0b0101, 0b0111, 0b1101, 0b1111]);
        for v in 0..s.len() {
            assert_eq!(s.to_virt(s.to_phys(v)), Some(v));
        }
        assert_eq!(s.to_virt(0b0100), None, "outside the subcube");
        assert!(s.contains(0b1111));
        assert!(!s.contains(0));
    }

    #[test]
    fn subcube_edges_are_physical_cube_edges() {
        // Virtual neighbours across virtual dimension k are physical
        // neighbours across dims()[k]: one hop, never more.
        let c = Hypercube::new(5);
        let s = Subcube::new(0b00010, vec![0, 2, 4]);
        for v in 0..s.len() {
            for k in 0..s.dim() {
                let pv = s.to_phys(v);
                let pn = s.to_phys(v ^ (1 << k));
                assert_eq!(c.distance(pv, pn), 1);
                assert_eq!(pv ^ pn, 1 << s.dims()[k as usize]);
            }
        }
    }

    #[test]
    fn aligned_subcubes_of_dim_le_3_stay_in_one_module() {
        for d in 0..=3u32 {
            for base in (0..64).step_by(1 << d) {
                let s = Subcube::aligned(base, d);
                assert!(s.within_one_module(), "aligned {d}-subcube at {base}");
            }
        }
        // A 4-subcube necessarily spans two modules.
        assert!(!Subcube::aligned(0, 4).within_one_module());
    }

    #[test]
    fn disjoint_aligned_blocks_are_disjoint() {
        let a = Subcube::aligned(0, 2);
        let b = Subcube::aligned(4, 2);
        let c = Subcube::aligned(0, 3);
        assert!(a.disjoint(&b));
        assert!(b.disjoint(&a));
        assert!(!a.disjoint(&c), "the 3-subcube covers the 2-subcube");
        assert!(!a.disjoint(&a));
    }

    #[test]
    #[should_panic(expected = "low corner")]
    fn subcube_base_must_be_canonical() {
        let _ = Subcube::new(0b10, vec![1]);
    }
}
