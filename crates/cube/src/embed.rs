//! Figure 3: mapping application topologies onto the binary n-cube.
//!
//! "The binary n-cube can be mapped onto many important applications
//! topologies, including meshes (up to dimension n), rings, cylinders,
//! toroids, and even FFT butterfly connections of radix 2" (§III).
//!
//! Every constructor here produces a **dilation-1** embedding: each logical
//! edge of the guest topology lands on a physical cube edge, so neighbour
//! communication never pays multi-hop routing. The `dilation()` methods
//! recompute that property from scratch — they are the checked reproduction
//! of Figure 3.
//!
//! Rings and toroids use the *reflected Gray code* (cyclic: the last and
//! first codewords also differ in one bit). Meshes use one Gray-coded bit
//! field per axis. Sides must be powers of two — the natural machine sizes;
//! the paper's machines are always power-of-two shaped.

use crate::{gray, gray_inv, Hypercube, NodeId};

/// Ring of 2ⁿ positions on an n-cube, position `p` ↦ node `gray(p)`.
#[derive(Clone, Copy, Debug)]
pub struct RingEmbedding {
    cube: Hypercube,
}

impl RingEmbedding {
    /// Embed a ring spanning the entire cube.
    pub fn new(cube: Hypercube) -> RingEmbedding {
        RingEmbedding { cube }
    }

    /// Ring length (= node count).
    pub fn len(&self) -> u32 {
        self.cube.nodes()
    }

    /// True only for the degenerate 0-cube.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Node hosting ring position `pos`.
    pub fn node_at(&self, pos: u32) -> NodeId {
        debug_assert!(pos < self.len());
        gray(pos)
    }

    /// Ring position hosted by `node`.
    pub fn pos_of(&self, node: NodeId) -> u32 {
        gray_inv(node)
    }

    /// Successor node around the ring.
    pub fn next(&self, node: NodeId) -> NodeId {
        self.node_at((self.pos_of(node) + 1) % self.len())
    }

    /// Predecessor node around the ring.
    pub fn prev(&self, node: NodeId) -> NodeId {
        self.node_at((self.pos_of(node) + self.len() - 1) % self.len())
    }

    /// Maximum cube distance across any ring edge (1 for a correct
    /// embedding; the wrap edge is covered because the Gray code is cyclic).
    pub fn dilation(&self) -> u32 {
        let n = self.len();
        (0..n)
            .map(|p| {
                self.cube
                    .distance(self.node_at(p), self.node_at((p + 1) % n))
            })
            .max()
            .unwrap_or(0)
    }
}

/// A k-dimensional mesh (or torus) with power-of-two sides, one Gray-coded
/// bit field per axis. Axis 0 occupies the lowest-order bits.
#[derive(Clone, Debug)]
pub struct MeshEmbedding {
    cube: Hypercube,
    /// log₂ of each side length.
    bits: Vec<u32>,
    /// Cumulative bit offsets per axis.
    offsets: Vec<u32>,
}

impl MeshEmbedding {
    /// Embed a mesh with sides `2^bits[0] × 2^bits[1] × …`; the bit widths
    /// must sum to the cube dimension (the mesh uses the whole machine).
    /// Panics otherwise.
    pub fn new(cube: Hypercube, bits: &[u32]) -> MeshEmbedding {
        let total: u32 = bits.iter().sum();
        assert_eq!(
            total,
            cube.dim(),
            "mesh axis widths must sum to the cube dimension"
        );
        let mut offsets = Vec::with_capacity(bits.len());
        let mut off = 0;
        for &b in bits {
            offsets.push(off);
            off += b;
        }
        MeshEmbedding {
            cube,
            bits: bits.to_vec(),
            offsets,
        }
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.bits.len()
    }

    /// Side length along `axis`.
    pub fn side(&self, axis: usize) -> u32 {
        1 << self.bits[axis]
    }

    /// Node hosting the mesh coordinate `coords`.
    pub fn node_at(&self, coords: &[u32]) -> NodeId {
        debug_assert_eq!(coords.len(), self.rank());
        let mut node = 0;
        for (axis, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.side(axis));
            node |= gray(c) << self.offsets[axis];
        }
        node
    }

    /// Mesh coordinate hosted by `node`.
    pub fn coords_of(&self, node: NodeId) -> Vec<u32> {
        self.bits
            .iter()
            .zip(&self.offsets)
            .map(|(&b, &off)| gray_inv((node >> off) & ((1 << b) - 1)))
            .collect()
    }

    /// Neighbour one step along `axis` (+1 or −1); `None` at a mesh face.
    pub fn step(&self, coords: &[u32], axis: usize, forward: bool) -> Option<Vec<u32>> {
        let mut c = coords.to_vec();
        if forward {
            if c[axis] + 1 >= self.side(axis) {
                return None;
            }
            c[axis] += 1;
        } else {
            c[axis] = c[axis].checked_sub(1)?;
        }
        Some(c)
    }

    /// Neighbour one step along `axis` with wrap-around (torus edge).
    pub fn step_wrap(&self, coords: &[u32], axis: usize, forward: bool) -> Vec<u32> {
        let side = self.side(axis);
        let mut c = coords.to_vec();
        c[axis] = if forward {
            (c[axis] + 1) % side
        } else {
            (c[axis] + side - 1) % side
        };
        c
    }

    /// Maximum cube distance across any *mesh* edge (no wrap).
    pub fn dilation(&self) -> u32 {
        self.edge_dilation(false)
    }

    /// Maximum cube distance across any *torus* edge (with wrap).
    /// The cyclic Gray code keeps this at 1 too — the paper's "toroids".
    pub fn torus_dilation(&self) -> u32 {
        self.edge_dilation(true)
    }

    fn edge_dilation(&self, wrap: bool) -> u32 {
        let mut worst = 0;
        for node in self.cube.iter() {
            let coords = self.coords_of(node);
            for axis in 0..self.rank() {
                let nb = if wrap {
                    Some(self.step_wrap(&coords, axis, true))
                } else {
                    self.step(&coords, axis, true)
                };
                if let Some(nb) = nb {
                    let d = self.cube.distance(node, self.node_at(&nb));
                    worst = worst.max(d);
                }
            }
        }
        worst
    }
}

/// The radix-2 FFT butterfly network of 2ⁿ points on an n-cube: at stage
/// `s`, point `i` exchanges with point `i XOR 2^s` — under the identity
/// placement each exchange is exactly one cube edge.
#[derive(Clone, Copy, Debug)]
pub struct FftEmbedding {
    cube: Hypercube,
}

impl FftEmbedding {
    /// Embed the log₂(p)-stage butterfly on the whole cube.
    pub fn new(cube: Hypercube) -> FftEmbedding {
        FftEmbedding { cube }
    }

    /// Number of butterfly stages (= cube dimension).
    pub fn stages(&self) -> u32 {
        self.cube.dim()
    }

    /// The exchange partner of `node` at `stage`.
    pub fn partner(&self, node: NodeId, stage: u32) -> NodeId {
        debug_assert!(stage < self.stages());
        node ^ (1 << stage)
    }

    /// Maximum cube distance of any butterfly exchange: 1 by construction,
    /// recomputed here as the checked claim.
    pub fn dilation(&self) -> u32 {
        let mut worst = 0;
        for node in self.cube.iter() {
            for s in 0..self.stages() {
                worst = worst.max(self.cube.distance(node, self.partner(node, s)));
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_dilation_one_including_wrap() {
        for dim in 1..=8 {
            let r = RingEmbedding::new(Hypercube::new(dim));
            assert_eq!(r.dilation(), 1, "ring on {dim}-cube");
        }
    }

    #[test]
    fn ring_positions_roundtrip() {
        let r = RingEmbedding::new(Hypercube::new(6));
        for p in 0..r.len() {
            assert_eq!(r.pos_of(r.node_at(p)), p);
        }
        // next/prev are inverses and single hops.
        let c = Hypercube::new(6);
        for node in c.iter() {
            assert_eq!(r.prev(r.next(node)), node);
            assert_eq!(c.distance(node, r.next(node)), 1);
        }
    }

    #[test]
    fn mesh_2d_on_4cube() {
        // Figure 3 shows a 4×4 mesh on the tesseract.
        let m = MeshEmbedding::new(Hypercube::new(4), &[2, 2]);
        assert_eq!(m.rank(), 2);
        assert_eq!(m.side(0), 4);
        assert_eq!(m.side(1), 4);
        assert_eq!(m.dilation(), 1);
        assert_eq!(m.torus_dilation(), 1);
    }

    #[test]
    fn mesh_up_to_dimension_n() {
        // 1-D through 6-D meshes on a 6-cube, as the paper promises
        // ("meshes (up to dimension n)").
        let c = Hypercube::new(6);
        for bits in [
            vec![6],
            vec![3, 3],
            vec![2, 2, 2],
            vec![1, 2, 3],
            vec![1, 1, 2, 2],
            vec![1, 1, 1, 1, 1, 1],
        ] {
            let m = MeshEmbedding::new(c, &bits);
            assert_eq!(m.dilation(), 1, "{bits:?}");
            assert_eq!(m.torus_dilation(), 1, "{bits:?} torus");
        }
    }

    #[test]
    fn mesh_coords_roundtrip() {
        let m = MeshEmbedding::new(Hypercube::new(5), &[2, 3]);
        for x in 0..4 {
            for y in 0..8 {
                let node = m.node_at(&[x, y]);
                assert_eq!(m.coords_of(node), vec![x, y]);
            }
        }
    }

    #[test]
    fn mesh_faces_have_no_neighbor() {
        let m = MeshEmbedding::new(Hypercube::new(4), &[2, 2]);
        assert!(m.step(&[3, 1], 0, true).is_none());
        assert!(m.step(&[0, 1], 0, false).is_none());
        assert_eq!(m.step(&[1, 1], 0, true), Some(vec![2, 1]));
        // Torus wraps instead.
        assert_eq!(m.step_wrap(&[3, 1], 0, true), vec![0, 1]);
    }

    #[test]
    fn cylinder_is_mesh_times_ring() {
        // A "cylinder" (paper's list) = wrap one axis, not the other:
        // both kinds of edge are dilation-1, so the cylinder is too.
        let m = MeshEmbedding::new(Hypercube::new(5), &[2, 3]);
        assert_eq!(m.dilation(), 1);
        assert_eq!(m.torus_dilation(), 1);
    }

    #[test]
    fn fft_butterfly_is_dilation_one() {
        for dim in 1..=8 {
            let f = FftEmbedding::new(Hypercube::new(dim));
            assert_eq!(f.stages(), dim);
            assert_eq!(f.dilation(), 1, "butterfly on {dim}-cube");
        }
    }

    #[test]
    fn butterfly_partner_is_involution() {
        let f = FftEmbedding::new(Hypercube::new(6));
        for node in Hypercube::new(6).iter() {
            for s in 0..6 {
                assert_eq!(f.partner(f.partner(node, s), s), node);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to the cube dimension")]
    fn wrong_mesh_shape_rejected() {
        let _ = MeshEmbedding::new(Hypercube::new(4), &[2, 3]);
    }
}
