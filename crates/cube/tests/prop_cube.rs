//! Property tests for the hypercube combinatorics.

use proptest::prelude::*;
use ts_cube::embed::{FftEmbedding, MeshEmbedding, RingEmbedding};
use ts_cube::{gray, gray_inv, Hypercube, SublinkBudget};

proptest! {
    #[test]
    fn gray_inverse_roundtrip(i in any::<u32>()) {
        prop_assert_eq!(gray_inv(gray(i)), i);
    }

    #[test]
    fn gray_adjacent_codes_differ_in_one_bit(i in 0u32..u32::MAX) {
        prop_assert_eq!((gray(i) ^ gray(i + 1)).count_ones(), 1);
    }

    #[test]
    fn route_length_equals_hamming_distance(dim in 1u32..=14, a in any::<u32>(), b in any::<u32>()) {
        let c = Hypercube::new(dim);
        let mask = c.nodes() - 1;
        let (a, b) = (a & mask, b & mask);
        let path = c.route(a, b);
        prop_assert_eq!(path.len() as u32, c.distance(a, b) + 1);
        // Every step is one cube edge; dimensions strictly increase.
        let mut last = None;
        for w in path.windows(2) {
            let d = w[0] ^ w[1];
            prop_assert_eq!(d.count_ones(), 1);
            let dim_idx = d.trailing_zeros();
            prop_assert!(last.is_none_or(|l| dim_idx > l));
            last = Some(dim_idx);
        }
    }

    #[test]
    fn distance_is_a_metric(dim in 1u32..=12, a in any::<u32>(), b in any::<u32>(), c_ in any::<u32>()) {
        let c = Hypercube::new(dim);
        let m = c.nodes() - 1;
        let (a, b, x) = (a & m, b & m, c_ & m);
        prop_assert_eq!(c.distance(a, b), c.distance(b, a));
        prop_assert_eq!(c.distance(a, a), 0);
        prop_assert!(c.distance(a, x) <= c.distance(a, b) + c.distance(b, x));
        prop_assert!(c.distance(a, b) <= c.diameter());
    }

    #[test]
    fn binomial_tree_paths_reach_root(dim in 1u32..=10, root in any::<u32>(), node in any::<u32>()) {
        let c = Hypercube::new(dim);
        let m = c.nodes() - 1;
        let (root, node) = (root & m, node & m);
        let mut cur = node;
        let mut hops = 0;
        while cur != root {
            let parent = c.binomial_parent(root, cur);
            prop_assert_eq!(c.distance(cur, parent), 1);
            cur = parent;
            hops += 1;
            prop_assert!(hops <= dim);
        }
        // Depth equals the Hamming distance to the root.
        prop_assert_eq!(hops, c.distance(node, root));
    }

    #[test]
    fn parent_child_consistency(dim in 1u32..=8, root in any::<u32>(), node in any::<u32>()) {
        let c = Hypercube::new(dim);
        let m = c.nodes() - 1;
        let (root, node) = (root & m, node & m);
        for ch in c.binomial_children(root, node) {
            prop_assert_eq!(c.binomial_parent(root, ch), node);
        }
    }

    #[test]
    fn ring_embedding_properties(dim in 1u32..=11) {
        let c = Hypercube::new(dim);
        let r = RingEmbedding::new(c);
        prop_assert_eq!(r.dilation(), 1);
        // next/prev consistency at a few sampled nodes.
        for node in [0, c.nodes() / 3, c.nodes() - 1] {
            prop_assert_eq!(r.prev(r.next(node)), node);
        }
    }

    #[test]
    fn random_mesh_shapes_are_dilation_one(dim in 2u32..=9, cut in 1u32..=8) {
        let cut = cut.min(dim - 1);
        let c = Hypercube::new(dim);
        let m = MeshEmbedding::new(c, &[cut, dim - cut]);
        prop_assert_eq!(m.dilation(), 1);
        prop_assert_eq!(m.torus_dilation(), 1);
        // Coordinates round-trip for random nodes.
        for node in [0, c.nodes() / 2, c.nodes() - 1] {
            let coords = m.coords_of(node);
            prop_assert_eq!(m.node_at(&coords), node);
        }
    }

    #[test]
    fn butterfly_always_one_hop(dim in 1u32..=12, node in any::<u32>(), stage in any::<u32>()) {
        let c = Hypercube::new(dim);
        let f = FftEmbedding::new(c);
        let node = node & (c.nodes() - 1);
        let stage = stage % dim;
        let p = f.partner(node, stage);
        prop_assert_eq!(c.distance(node, p), 1);
        prop_assert_eq!(f.partner(p, stage), node);
    }

    #[test]
    fn sublink_budget_never_exceeds_total(system in 0u32..=8, io in 0u32..=8) {
        let b = SublinkBudget { system, io };
        prop_assert!(b.for_hypercube() <= SublinkBudget::TOTAL);
        prop_assert!(b.max_dim() <= Hypercube::MAX_DIM);
        prop_assert!(b.supports(b.max_dim()));
        prop_assert!(!b.supports(b.max_dim() + 1));
    }
}
