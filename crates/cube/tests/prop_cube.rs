//! Property tests for the hypercube combinatorics. Seeded random cases via
//! [`Rng`] (offline, reproducible).

use ts_cube::embed::{FftEmbedding, MeshEmbedding, RingEmbedding};
use ts_cube::{gray, gray_inv, Hypercube, SublinkBudget};
use ts_sim::Rng;

#[test]
fn gray_inverse_roundtrip() {
    let mut rng = Rng::new(0xc0be_0001);
    for _ in 0..1024 {
        let i = rng.next_u32();
        assert_eq!(gray_inv(gray(i)), i);
    }
}

#[test]
fn gray_adjacent_codes_differ_in_one_bit() {
    let mut rng = Rng::new(0xc0be_0002);
    for _ in 0..1024 {
        let i = (rng.next_u64() % (u32::MAX as u64)) as u32;
        assert_eq!((gray(i) ^ gray(i + 1)).count_ones(), 1);
    }
}

#[test]
fn route_length_equals_hamming_distance() {
    let mut rng = Rng::new(0xc0be_0003);
    for _ in 0..256 {
        let dim = 1 + rng.below(14) as u32;
        let c = Hypercube::new(dim);
        let mask = c.nodes() - 1;
        let (a, b) = (rng.next_u32() & mask, rng.next_u32() & mask);
        let path = c.route(a, b);
        assert_eq!(path.len() as u32, c.distance(a, b) + 1);
        // Every step is one cube edge; dimensions strictly increase.
        let mut last = None;
        for w in path.windows(2) {
            let d = w[0] ^ w[1];
            assert_eq!(d.count_ones(), 1);
            let dim_idx = d.trailing_zeros();
            assert!(last.is_none_or(|l| dim_idx > l));
            last = Some(dim_idx);
        }
    }
}

#[test]
fn distance_is_a_metric() {
    let mut rng = Rng::new(0xc0be_0004);
    for _ in 0..256 {
        let dim = 1 + rng.below(12) as u32;
        let c = Hypercube::new(dim);
        let m = c.nodes() - 1;
        let (a, b, x) = (rng.next_u32() & m, rng.next_u32() & m, rng.next_u32() & m);
        assert_eq!(c.distance(a, b), c.distance(b, a));
        assert_eq!(c.distance(a, a), 0);
        assert!(c.distance(a, x) <= c.distance(a, b) + c.distance(b, x));
        assert!(c.distance(a, b) <= c.diameter());
    }
}

#[test]
fn binomial_tree_paths_reach_root() {
    let mut rng = Rng::new(0xc0be_0005);
    for _ in 0..256 {
        let dim = 1 + rng.below(10) as u32;
        let c = Hypercube::new(dim);
        let m = c.nodes() - 1;
        let (root, node) = (rng.next_u32() & m, rng.next_u32() & m);
        let mut cur = node;
        let mut hops = 0;
        while cur != root {
            let parent = c.binomial_parent(root, cur);
            assert_eq!(c.distance(cur, parent), 1);
            cur = parent;
            hops += 1;
            assert!(hops <= dim);
        }
        // Depth equals the Hamming distance to the root.
        assert_eq!(hops, c.distance(node, root));
    }
}

#[test]
fn parent_child_consistency() {
    let mut rng = Rng::new(0xc0be_0006);
    for _ in 0..256 {
        let dim = 1 + rng.below(8) as u32;
        let c = Hypercube::new(dim);
        let m = c.nodes() - 1;
        let (root, node) = (rng.next_u32() & m, rng.next_u32() & m);
        for ch in c.binomial_children(root, node) {
            assert_eq!(c.binomial_parent(root, ch), node);
        }
    }
}

#[test]
fn ring_embedding_properties() {
    for dim in 1u32..=11 {
        let c = Hypercube::new(dim);
        let r = RingEmbedding::new(c);
        assert_eq!(r.dilation(), 1);
        // next/prev consistency at a few sampled nodes.
        for node in [0, c.nodes() / 3, c.nodes() - 1] {
            assert_eq!(r.prev(r.next(node)), node);
        }
    }
}

#[test]
fn random_mesh_shapes_are_dilation_one() {
    let mut rng = Rng::new(0xc0be_0007);
    for _ in 0..64 {
        let dim = 2 + rng.below(8) as u32;
        let cut = (1 + rng.below(8) as u32).min(dim - 1);
        let c = Hypercube::new(dim);
        let m = MeshEmbedding::new(c, &[cut, dim - cut]);
        assert_eq!(m.dilation(), 1);
        assert_eq!(m.torus_dilation(), 1);
        // Coordinates round-trip for random nodes.
        for node in [0, c.nodes() / 2, c.nodes() - 1] {
            let coords = m.coords_of(node);
            assert_eq!(m.node_at(&coords), node);
        }
    }
}

#[test]
fn butterfly_always_one_hop() {
    let mut rng = Rng::new(0xc0be_0008);
    for _ in 0..256 {
        let dim = 1 + rng.below(12) as u32;
        let c = Hypercube::new(dim);
        let f = FftEmbedding::new(c);
        let node = rng.next_u32() & (c.nodes() - 1);
        let stage = rng.next_u32() % dim;
        let p = f.partner(node, stage);
        assert_eq!(c.distance(node, p), 1);
        assert_eq!(f.partner(p, stage), node);
    }
}

#[test]
fn sublink_budget_never_exceeds_total() {
    for system in 0u32..=8 {
        for io in 0u32..=8 {
            let b = SublinkBudget { system, io };
            assert!(b.for_hypercube() <= SublinkBudget::TOTAL);
            assert!(b.max_dim() <= Hypercube::MAX_DIM);
            assert!(b.supports(b.max_dim()));
            assert!(!b.supports(b.max_dim() + 1));
        }
    }
}
