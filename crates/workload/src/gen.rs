//! Seeded trace generation: open arrival streams with configurable
//! interarrival, size, service and class structure.
//!
//! [`TraceGen`] is a builder: pick an interarrival process (Poisson via
//! [`Dist::Exp`], bursty heavy-tailed via [`Dist::Pareto`] or
//! [`Dist::LogNormal`]), a job-size mix over subcube orders, a
//! service-time distribution and a set of priority/deadline classes,
//! then [`TraceGen::generate`] a [`Trace`] of any length. The generator
//! owns a single deterministic RNG stream with a fixed per-arrival draw
//! order, so one seed pins the whole trace — rerunning, reordering
//! builder calls, or regenerating a prefix all reproduce the same jobs.

use ts_sim::{Dur, Rng};

use crate::dist::Dist;
use crate::trace::{Arrival, Trace, WorkKind};

/// One priority/deadline class of the stream (an "urgent interactive"
/// or "bulk batch" population).
#[derive(Debug, Clone)]
struct ClassSpec {
    name: String,
    weight: f64,
    priority: u32,
    /// Deadline as a multiple of the job's sampled service time
    /// (`Some(20.0)` = "finish within 20× your own runtime").
    deadline_slack: Option<f64>,
}

/// Builder for seeded, replayable open-arrival traces.
#[derive(Debug, Clone)]
pub struct TraceGen {
    seed: u64,
    interarrival: Dist,
    sizes: Vec<(u32, f64)>,
    service: Dist,
    classes: Vec<ClassSpec>,
    kernel_fraction: f64,
}

impl TraceGen {
    /// A generator with the default shape: Poisson arrivals at 10k
    /// jobs/simulated-second, a 60/30/10 mix of 1-, 2- and 3-subcubes,
    /// exponential service with a 100 µs mean, and one best-effort
    /// `batch` class at priority 0. Every knob has a builder method.
    pub fn new(seed: u64) -> TraceGen {
        TraceGen {
            seed,
            interarrival: Dist::Exp { mean: 1e-4 },
            sizes: vec![(1, 0.6), (2, 0.3), (3, 0.1)],
            service: Dist::Exp { mean: 1e-4 },
            classes: vec![ClassSpec {
                name: "batch".to_string(),
                weight: 1.0,
                priority: 0,
                deadline_slack: None,
            }],
            kernel_fraction: 0.0,
        }
    }

    /// Set the interarrival-gap distribution, in simulated seconds.
    /// `Dist::Exp { mean: 1/λ }` makes the stream Poisson with rate λ.
    pub fn interarrival(mut self, d: Dist) -> TraceGen {
        self.interarrival = d;
        self
    }

    /// Set the job-size mix: `(subcube order, weight)` pairs. Weights
    /// need not sum to 1.
    pub fn sizes(mut self, mix: &[(u32, f64)]) -> TraceGen {
        assert!(!mix.is_empty(), "size mix cannot be empty");
        assert!(
            mix.iter().all(|&(_, w)| w > 0.0),
            "weights must be positive"
        );
        self.sizes = mix.to_vec();
        self
    }

    /// Set the service-time distribution, in simulated seconds.
    pub fn service(mut self, d: Dist) -> TraceGen {
        self.service = d;
        self
    }

    /// Replace the class list with this first class (see
    /// [`TraceGen::class`] to add more). `deadline_slack` of `Some(k)`
    /// gives each job a deadline of `k ×` its sampled service time.
    pub fn classes(
        mut self,
        name: &str,
        weight: f64,
        priority: u32,
        deadline_slack: Option<f64>,
    ) -> TraceGen {
        self.classes.clear();
        self.class(name, weight, priority, deadline_slack)
    }

    /// Add a class to the mix.
    pub fn class(
        mut self,
        name: &str,
        weight: f64,
        priority: u32,
        deadline_slack: Option<f64>,
    ) -> TraceGen {
        assert!(weight > 0.0, "class weight must be positive");
        self.classes.push(ClassSpec {
            name: name.to_string(),
            weight,
            priority,
            deadline_slack,
        });
        self
    }

    /// Fraction of arrivals carrying a real `ts-sched` kernel
    /// (alternating SAXPY / all-reduce shapes) instead of a synthetic
    /// hold. The rest stay [`WorkKind::Synthetic`].
    pub fn kernel_fraction(mut self, f: f64) -> TraceGen {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        self.kernel_fraction = f;
        self
    }

    /// Mean node-seconds one arrival asks for: `E[2^dim] × E[service]`.
    /// `None` when either factor is infinite (e.g. Pareto `alpha ≤ 1`).
    pub fn mean_node_seconds(&self) -> Option<f64> {
        let wsum: f64 = self.sizes.iter().map(|&(_, w)| w).sum();
        let mean_nodes: f64 = self
            .sizes
            .iter()
            .map(|&(d, w)| (1u64 << d) as f64 * w / wsum)
            .sum();
        Some(mean_nodes * self.service.mean()?)
    }

    /// Offered load on a `2^fleet_dim`-node fleet: node-seconds demanded
    /// per second of stream, over the fleet's node capacity. 1.0 is the
    /// saturation point; a stable queue needs < 1.
    pub fn offered_load(&self, fleet_dim: u32) -> Option<f64> {
        let per_arrival = self.mean_node_seconds()?;
        let gap = self.interarrival.mean()?;
        Some(per_arrival / gap / (1u64 << fleet_dim) as f64)
    }

    /// Generate `n` arrivals. Deterministic in the seed and builder
    /// state; the draw order per arrival is fixed (gap, class, size,
    /// kernel shape, service), so the stream is stable.
    pub fn generate(&self, n: usize) -> Trace {
        let mut rng = Rng::new(self.seed);
        let mut trace = Trace::new();
        for c in &self.classes {
            trace.class(&c.name);
        }
        let size_wsum: f64 = self.sizes.iter().map(|&(_, w)| w).sum();
        let class_wsum: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut at = Dur::ZERO;
        for _ in 0..n {
            at += secs_to_dur(self.interarrival.sample(&mut rng));
            let class = pick(&mut rng, class_wsum, self.classes.iter().map(|c| c.weight));
            let dim = pick(&mut rng, size_wsum, self.sizes.iter().map(|&(_, w)| w));
            let work = if self.kernel_fraction > 0.0 && rng.f64() < self.kernel_fraction {
                // Alternate kernel shapes off the same RNG stream so the
                // mix is seeded too.
                match rng.below(3) {
                    0 => WorkKind::Saxpy {
                        phases: 1,
                        sweeps: 1 + rng.below(3) as u32,
                    },
                    1 => WorkKind::Saxpy {
                        phases: 2,
                        sweeps: 1 + rng.below(2) as u32,
                    },
                    _ => WorkKind::AllReduce {
                        phases: 1 + rng.below(2) as u32,
                    },
                }
            } else {
                WorkKind::Synthetic
            };
            let service = secs_to_dur(self.service.sample(&mut rng)).max(Dur::ps(1));
            let spec = &self.classes[class];
            let deadline = spec
                .deadline_slack
                .map(|k| Dur::ps(((service.as_ps() as f64) * k).round() as u64));
            trace.push(Arrival {
                at,
                dim: self.sizes[dim].0,
                priority: spec.priority,
                class: class as u8,
                work,
                service,
                deadline,
            });
        }
        trace
    }
}

/// Weighted index choice; one uniform draw, cumulative scan.
fn pick(rng: &mut Rng, wsum: f64, weights: impl Iterator<Item = f64>) -> usize {
    let u = rng.f64() * wsum;
    let mut acc = 0.0;
    let mut last = 0;
    for (i, w) in weights.enumerate() {
        acc += w;
        last = i;
        if u < acc {
            return i;
        }
    }
    last
}

/// Simulated seconds to a [`Dur`], clamped to non-negative.
fn secs_to_dur(s: f64) -> Dur {
    Dur::from_secs_f64(s.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn heavy() -> TraceGen {
        TraceGen::new(1986)
            .interarrival(Dist::Pareto {
                xmin: 2e-5,
                alpha: 1.5,
            })
            .service(Dist::LogNormal {
                mu: -9.5,
                sigma: 0.8,
            })
            .sizes(&[(0, 0.3), (2, 0.5), (4, 0.2)])
            .classes("batch", 0.7, 0, None)
            .class("urgent", 0.3, 3, Some(20.0))
            .kernel_fraction(0.25)
    }

    #[test]
    fn same_seed_same_trace() {
        let a = heavy().generate(5_000);
        let b = heavy().generate(5_000);
        assert_eq!(a, b);
        // A prefix regenerates identically too (stable draw order).
        let p = heavy().generate(100);
        assert_eq!(&a.arrivals[..100], &p.arrivals[..]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGen::new(1).generate(100);
        let b = TraceGen::new(2).generate(100);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_trace_round_trips_through_text() {
        let t = heavy().generate(500);
        let back = Trace::parse(&t.to_string()).expect("parse");
        assert_eq!(back, t);
    }

    #[test]
    fn mix_fractions_converge() {
        let t = heavy().generate(20_000);
        let urgent = t
            .arrivals
            .iter()
            .filter(|a| t.classes[a.class as usize] == "urgent")
            .count() as f64
            / t.len() as f64;
        assert!((urgent - 0.3).abs() < 0.02, "urgent fraction {urgent}");
        let kernels = t
            .arrivals
            .iter()
            .filter(|a| a.work != WorkKind::Synthetic)
            .count() as f64
            / t.len() as f64;
        assert!((kernels - 0.25).abs() < 0.02, "kernel fraction {kernels}");
        let wide = t.arrivals.iter().filter(|a| a.dim == 4).count() as f64 / t.len() as f64;
        assert!((wide - 0.2).abs() < 0.02, "wide fraction {wide}");
        // Urgent jobs carry deadlines, batch jobs do not.
        for a in &t.arrivals {
            let has = a.deadline.is_some();
            assert_eq!(has, t.classes[a.class as usize] == "urgent");
        }
    }

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        let rate = 50_000.0; // jobs per simulated second
        let g = TraceGen::new(7).interarrival(Dist::Exp { mean: 1.0 / rate });
        let t = g.generate(30_000);
        let got = t.len() as f64 / t.span().as_secs_f64();
        assert!(
            (got / rate - 1.0).abs() < 0.05,
            "arrival rate {got} vs {rate}"
        );
    }

    #[test]
    fn offered_load_matches_empirical_demand() {
        let g = TraceGen::new(3)
            .interarrival(Dist::Exp { mean: 5e-5 })
            .service(Dist::Exp { mean: 2e-4 })
            .sizes(&[(1, 1.0), (3, 1.0)]);
        let load = g.offered_load(6).unwrap();
        // E[nodes] = 5, so load = (5 × 2e-4) / (5e-5 × 64).
        assert!((load - 0.3125).abs() < 1e-9, "load {load}");
        let t = g.generate(50_000);
        let node_secs: f64 = t
            .arrivals
            .iter()
            .map(|a| (1u64 << a.dim) as f64 * a.service.as_secs_f64())
            .sum();
        let empirical = node_secs / t.span().as_secs_f64() / 64.0;
        assert!(
            (empirical / load - 1.0).abs() < 0.05,
            "empirical load {empirical} vs {load}"
        );
    }
}
