//! # ts-workload — open-arrival workload traces for the T Series
//!
//! The machines this repo reproduces were run as shared facilities: the
//! Columbia 16K-node lattice engine and the PMS "Poor Man's
//! Supercomputer" both fed long queues of jobs through partitioned
//! subcubes, around the clock. That workload shape — an *open* stream
//! of arrivals, not a fixed batch — is what this crate generates:
//!
//! * [`Dist`] — deterministic sampling distributions (exponential for
//!   Poisson streams, Pareto/lognormal for heavy tails, fixed/uniform
//!   for calibration), built on the workspace's seeded xorshift RNG;
//! * [`Trace`] / [`Arrival`] / [`WorkKind`] — the replayable trace: one
//!   record per arriving job (offset, subcube order, priority class,
//!   service demand, deadline, and what to run), serializable to a text
//!   format whose `Display` and [`Trace::parse`] are exact inverses;
//! * [`TraceGen`] — the seeded builder that turns an arrival process, a
//!   job-size mix and a set of priority/deadline classes into a trace
//!   of any length, deterministically.
//!
//! The admission side — queueing the arrivals against a live machine,
//! aging priorities, EDF ordering, capacity reporting — lives in
//! `ts-sched`'s `service` module; this crate is deliberately free of
//! scheduler and machine dependencies so traces can be generated,
//! parsed and inspected anywhere.
//!
//! ```
//! use ts_workload::{Dist, TraceGen, Trace};
//!
//! let gen = TraceGen::new(42)
//!     .interarrival(Dist::Exp { mean: 1e-4 })     // Poisson, 10k jobs/s
//!     .sizes(&[(1, 0.7), (3, 0.3)])               // mostly pair jobs
//!     .classes("batch", 0.8, 0, None)
//!     .class("urgent", 0.2, 3, Some(25.0));       // deadline = 25× runtime
//! let trace = gen.generate(1_000);
//! // The text form round-trips exactly.
//! assert_eq!(Trace::parse(&trace.to_string()).unwrap(), trace);
//! ```

mod dist;
mod gen;
mod trace;

pub use dist::Dist;
pub use gen::TraceGen;
pub use trace::{Arrival, Trace, TraceParseError, WorkKind};
