//! Sampling distributions for arrival and service processes.
//!
//! Everything draws from the workspace's deterministic [`Rng`]
//! (xorshift64* — no external crates), so a seed pins the whole stream:
//! the same [`Dist`] and seed produce the same samples forever, on every
//! platform the repo targets. The menu covers what machine-room traces
//! actually look like: exponential interarrivals (a Poisson stream),
//! Pareto and lognormal for the heavy tails real job runtimes and bursty
//! arrival gaps exhibit, plus fixed and uniform for calibration runs.

use std::f64::consts::PI;
use std::fmt;

use ts_sim::Rng;

/// A continuous distribution over non-negative values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Every sample is exactly `v`.
    Fixed(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean — interarrival gaps of a Poisson
    /// process with rate `1 / mean`.
    Exp {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Pareto (type I): density `∝ x^-(alpha+1)` on `[xmin, ∞)`. The
    /// classic heavy tail; `alpha ≤ 1` has infinite mean, `alpha ≤ 2`
    /// infinite variance. Supercomputer service times are commonly fit
    /// with `alpha` around 1.2–2.5.
    Pareto {
        /// Scale: smallest possible sample.
        xmin: f64,
        /// Tail index: smaller is heavier.
        alpha: f64,
    },
    /// Lognormal: `exp(N(mu, sigma²))`. Median `e^mu`; the usual fit for
    /// job runtimes with a moderate tail.
    LogNormal {
        /// Mean of the underlying normal (log-space).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl Dist {
    /// Draw one sample. Consumes one or two RNG values depending on the
    /// variant, so a stream of samples is reproducible given the seed
    /// *and* the draw order.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            Dist::Fixed(v) => v,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.f64(),
            Dist::Exp { mean } => rng.exp(mean),
            Dist::Pareto { xmin, alpha } => {
                // Inverse CDF: xmin · u^(-1/alpha). Clamp u away from 0
                // so the tail stays finite.
                let u = rng.f64().max(f64::EPSILON);
                xmin * u.powf(-1.0 / alpha)
            }
            Dist::LogNormal { mu, sigma } => {
                // Box–Muller on two uniforms; one sample per draw keeps
                // the stream position deterministic (the sine half is
                // discarded rather than cached).
                let u1 = rng.f64().max(f64::EPSILON);
                let u2 = rng.f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos();
                (mu + sigma * z).exp()
            }
        }
    }

    /// The distribution's mean, where finite (`None` for a Pareto with
    /// `alpha ≤ 1`). Used to size offered load analytically.
    pub fn mean(&self) -> Option<f64> {
        match *self {
            Dist::Fixed(v) => Some(v),
            Dist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Dist::Exp { mean } => Some(mean),
            Dist::Pareto { xmin, alpha } => (alpha > 1.0).then(|| alpha * xmin / (alpha - 1.0)),
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
        }
    }
}

impl fmt::Display for Dist {
    /// Compact single-token form used in trace headers:
    /// `fixed:v`, `uniform:lo:hi`, `exp:mean`, `pareto:xmin:alpha`,
    /// `lognormal:mu:sigma`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Dist::Fixed(v) => write!(f, "fixed:{v}"),
            Dist::Uniform { lo, hi } => write!(f, "uniform:{lo}:{hi}"),
            Dist::Exp { mean } => write!(f, "exp:{mean}"),
            Dist::Pareto { xmin, alpha } => write!(f, "pareto:{xmin}:{alpha}"),
            Dist::LogNormal { mu, sigma } => write!(f, "lognormal:{mu}:{sigma}"),
        }
    }
}

impl Dist {
    /// Parse the token form written by `Display`.
    pub fn parse(tok: &str) -> Option<Dist> {
        let mut parts = tok.split(':');
        let kind = parts.next()?;
        let mut num = || parts.next()?.parse::<f64>().ok();
        let d = match kind {
            "fixed" => Dist::Fixed(num()?),
            "uniform" => Dist::Uniform {
                lo: num()?,
                hi: num()?,
            },
            "exp" => Dist::Exp { mean: num()? },
            "pareto" => Dist::Pareto {
                xmin: num()?,
                alpha: num()?,
            },
            "lognormal" => Dist::LogNormal {
                mu: num()?,
                sigma: num()?,
            },
            _ => return None,
        };
        parts.next().is_none().then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        for d in [
            Dist::Exp { mean: 3.0 },
            Dist::Pareto {
                xmin: 1.0,
                alpha: 1.5,
            },
            Dist::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
            Dist::Uniform { lo: 2.0, hi: 4.0 },
        ] {
            let mut a = Rng::new(42);
            let mut b = Rng::new(42);
            for _ in 0..100 {
                assert_eq!(d.sample(&mut a).to_bits(), d.sample(&mut b).to_bits());
            }
        }
    }

    #[test]
    fn means_converge() {
        let exp = Dist::Exp { mean: 5.0 };
        let got = empirical_mean(exp, 40_000, 7);
        assert!((got - 5.0).abs() < 0.25, "exp mean {got}");

        let par = Dist::Pareto {
            xmin: 2.0,
            alpha: 3.0,
        };
        let want = par.mean().unwrap(); // 3.0
        let got = empirical_mean(par, 40_000, 8);
        assert!((got - want).abs() < 0.2, "pareto mean {got} want {want}");

        let ln = Dist::LogNormal {
            mu: 1.0,
            sigma: 0.5,
        };
        let want = ln.mean().unwrap();
        let got = empirical_mean(ln, 40_000, 9);
        assert!(
            (got / want - 1.0).abs() < 0.1,
            "lognormal mean {got} want {want}"
        );
    }

    #[test]
    fn pareto_tail_is_heavy_and_bounded_below() {
        let d = Dist::Pareto {
            xmin: 1.0,
            alpha: 1.2,
        };
        let mut rng = Rng::new(1986);
        let mut max = 0.0f64;
        for _ in 0..20_000 {
            let v = d.sample(&mut rng);
            assert!(v >= 1.0);
            max = max.max(v);
        }
        // A 20k draw from alpha=1.2 all but surely exceeds 100× xmin.
        assert!(max > 100.0, "heavy tail missing: max {max}");
        assert!(d.mean().unwrap() > 5.9); // alpha/(alpha-1) = 6
        assert_eq!(
            Dist::Pareto {
                xmin: 1.0,
                alpha: 0.9
            }
            .mean(),
            None
        );
    }

    #[test]
    fn display_parse_round_trip() {
        for d in [
            Dist::Fixed(2.5),
            Dist::Uniform { lo: 1.0, hi: 9.0 },
            Dist::Exp { mean: 0.125 },
            Dist::Pareto {
                xmin: 3.0,
                alpha: 1.5,
            },
            Dist::LogNormal {
                mu: -1.0,
                sigma: 0.75,
            },
        ] {
            let s = d.to_string();
            assert_eq!(Dist::parse(&s), Some(d), "{s}");
        }
        assert_eq!(Dist::parse("weibull:1:2"), None);
        assert_eq!(Dist::parse("exp:abc"), None);
        assert_eq!(Dist::parse("exp:1:2"), None);
    }
}
