//! The replayable arrival-trace format.
//!
//! A [`Trace`] is the unit of workload replay: an ordered list of job
//! [`Arrival`]s, each carrying everything the admission layer needs —
//! arrival offset, subcube order, priority class, a service-time figure
//! and what to actually run. Like `FaultPlan` in `t-series-core`, a
//! trace serializes to a plain-text format whose `Display` and
//! [`Trace::parse`] are exact inverses, so a generated trace can be
//! committed next to a test, mailed around in a bug report, and replayed
//! byte-identically forever.
//!
//! ```text
//! # one declaration line per class, then one line per arrival
//! class batch
//! class urgent
//! 0ps job d=2 p=0 c=batch k=synthetic s=400000ps dl=-
//! 125000ps job d=3 p=3 c=urgent k=allreduce/2 s=900000ps dl=4500000ps
//! ```
//!
//! Times are integer picoseconds (`<n>ps`), matching the simulator's
//! clock, so round-trips never lose precision. `s=` is the job's service
//! demand: synthetic jobs hold their subcube for exactly that long, and
//! kernel jobs use it as the runtime *estimate* the backfill reservation
//! plans around. `dl=` is the completion deadline relative to arrival
//! (`-` for best-effort).

use std::fmt;

use ts_sim::Dur;

/// What an arriving job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Hold the allocated subcube for the service time, doing no machine
    /// work. The lightweight job of capacity runs: admission, placement
    /// and accounting are exercised at full fidelity while millions of
    /// jobs stay cheap to simulate.
    Synthetic,
    /// The vector-bound `ts-sched` SAXPY kernel.
    Saxpy {
        /// Replayable phases.
        phases: u32,
        /// SAXPY passes per phase.
        sweeps: u32,
    },
    /// The link-bound `ts-sched` all-reduce kernel.
    AllReduce {
        /// Replayable phases.
        phases: u32,
    },
}

impl fmt::Display for WorkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WorkKind::Synthetic => write!(f, "synthetic"),
            WorkKind::Saxpy { phases, sweeps } => write!(f, "saxpy/{phases}/{sweeps}"),
            WorkKind::AllReduce { phases } => write!(f, "allreduce/{phases}"),
        }
    }
}

impl WorkKind {
    /// Parse the token form written by `Display`.
    pub fn parse(tok: &str) -> Option<WorkKind> {
        let mut parts = tok.split('/');
        let kind = parts.next()?;
        let mut num = || parts.next()?.parse::<u32>().ok();
        let k = match kind {
            "synthetic" => WorkKind::Synthetic,
            "saxpy" => WorkKind::Saxpy {
                phases: num()?,
                sweeps: num()?,
            },
            "allreduce" => WorkKind::AllReduce { phases: num()? },
            _ => return None,
        };
        parts.next().is_none().then_some(k)
    }
}

/// One job arriving on the open stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival offset from the stream start.
    pub at: Dur,
    /// Subcube order the job needs (`2^dim` nodes).
    pub dim: u32,
    /// Base priority; larger is more urgent. Admission may boost it via
    /// aging, but the trace records what the submitter asked for.
    pub priority: u32,
    /// Index into [`Trace::classes`] (the stream the job belongs to).
    pub class: u8,
    /// What to run.
    pub work: WorkKind,
    /// Service demand: exact hold time for synthetic jobs, runtime
    /// estimate for kernel jobs.
    pub service: Dur,
    /// Completion deadline relative to arrival; `None` is best-effort.
    pub deadline: Option<Dur>,
}

/// Error from [`Trace::parse`], pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub what: &'static str,
    /// The raw line text.
    pub text: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace line {}: {} in {:?}",
            self.line, self.what, self.text
        )
    }
}

impl std::error::Error for TraceParseError {}

/// An open-arrival workload trace: class names plus arrivals sorted by
/// offset (ties keep push order, which is the submission order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Class names, indexed by [`Arrival::class`].
    pub classes: Vec<String>,
    /// Arrivals in non-decreasing `at` order.
    pub arrivals: Vec<Arrival>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Register a class name, returning its index. Re-registering an
    /// existing name returns the original index.
    pub fn class(&mut self, name: &str) -> u8 {
        if let Some(i) = self.classes.iter().position(|c| c == name) {
            return i as u8;
        }
        assert!(self.classes.len() < 256, "too many classes");
        self.classes.push(name.to_string());
        (self.classes.len() - 1) as u8
    }

    /// Append an arrival. Must be pushed in non-decreasing `at` order —
    /// the service layer consumes the trace as a sorted event stream.
    pub fn push(&mut self, a: Arrival) {
        assert!((a.class as usize) < self.classes.len(), "unknown class");
        if let Some(last) = self.arrivals.last() {
            assert!(a.at >= last.at, "arrivals must be time-sorted");
        }
        self.arrivals.push(a);
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Largest subcube order any arrival requests (0 for an empty trace).
    pub fn max_dim(&self) -> u32 {
        self.arrivals.iter().map(|a| a.dim).max().unwrap_or(0)
    }

    /// Offset of the last arrival (zero for an empty trace).
    pub fn span(&self) -> Dur {
        self.arrivals.last().map_or(Dur::ZERO, |a| a.at)
    }

    /// Parse the plain-text trace format written by `Display`: `class`
    /// declarations followed by one `<at>ps job ...` line per arrival.
    /// Blank lines and `#` comments are ignored. Exact inverse of
    /// `to_string`.
    pub fn parse(text: &str) -> Result<Trace, TraceParseError> {
        let mut trace = Trace::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &'static str| TraceParseError {
                line: lineno + 1,
                what,
                text: raw.to_string(),
            };
            let mut tok = line.split_whitespace();
            let first = tok.next().ok_or_else(|| err("empty line"))?;
            if first == "class" {
                let name = tok.next().ok_or_else(|| err("missing class name"))?;
                trace.class(name);
                if tok.next().is_some() {
                    return Err(err("trailing tokens after class name"));
                }
                continue;
            }
            let at_ps: u64 = first
                .strip_suffix("ps")
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| err("bad time (want `<int>ps`)"))?;
            if tok.next() != Some("job") {
                return Err(err("expected `job` after the time"));
            }
            // Field helper: next token must carry the given `key=` prefix.
            let mut field = |key: &'static str| -> Result<String, TraceParseError> {
                tok.next()
                    .and_then(|t| t.strip_prefix(key))
                    .and_then(|t| t.strip_prefix('='))
                    .map(str::to_string)
                    .ok_or_else(|| err("bad or missing field"))
            };
            let dim: u32 = field("d")?.parse().map_err(|_| err("bad dim"))?;
            let priority: u32 = field("p")?.parse().map_err(|_| err("bad priority"))?;
            let cname = field("c")?;
            let work = WorkKind::parse(&field("k")?).ok_or_else(|| err("bad work kind"))?;
            let svc: u64 = field("s")?
                .strip_suffix("ps")
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| err("bad service time"))?;
            let dl = field("dl")?;
            let deadline = if dl == "-" {
                None
            } else {
                Some(Dur::ps(
                    dl.strip_suffix("ps")
                        .and_then(|d| d.parse().ok())
                        .ok_or_else(|| err("bad deadline"))?,
                ))
            };
            if tok.next().is_some() {
                return Err(err("trailing tokens"));
            }
            let class = trace
                .classes
                .iter()
                .position(|c| *c == cname)
                .ok_or_else(|| err("undeclared class"))? as u8;
            let a = Arrival {
                at: Dur::ps(at_ps),
                dim,
                priority,
                class,
                work,
                service: Dur::ps(svc),
                deadline,
            };
            if trace.arrivals.last().is_some_and(|last| a.at < last.at) {
                return Err(err("arrivals out of time order"));
            }
            trace.arrivals.push(a);
        }
        Ok(trace)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for name in &self.classes {
            writeln!(f, "class {name}")?;
        }
        for a in &self.arrivals {
            write!(
                f,
                "{}ps job d={} p={} c={} k={} s={}ps dl=",
                a.at.as_ps(),
                a.dim,
                a.priority,
                self.classes[a.class as usize],
                a.work,
                a.service.as_ps(),
            )?;
            match a.deadline {
                Some(d) => writeln!(f, "{}ps", d.as_ps())?,
                None => writeln!(f, "-")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        let batch = t.class("batch");
        let urgent = t.class("urgent");
        t.push(Arrival {
            at: Dur::ZERO,
            dim: 2,
            priority: 0,
            class: batch,
            work: WorkKind::Synthetic,
            service: Dur::us(40),
            deadline: None,
        });
        t.push(Arrival {
            at: Dur::ns(125),
            dim: 3,
            priority: 3,
            class: urgent,
            work: WorkKind::AllReduce { phases: 2 },
            service: Dur::us(90),
            deadline: Some(Dur::us(450)),
        });
        t.push(Arrival {
            at: Dur::us(7),
            dim: 0,
            priority: 1,
            class: batch,
            work: WorkKind::Saxpy {
                phases: 2,
                sweeps: 3,
            },
            service: Dur::us(10),
            deadline: None,
        });
        t
    }

    #[test]
    fn display_parse_round_trip() {
        let t = sample();
        let text = t.to_string();
        let back = Trace::parse(&text).expect("parse");
        assert_eq!(back, t);
        // And the text itself is a fixed point.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = format!("# a day of service\n\n{}\n# end\n", sample());
        assert_eq!(Trace::parse(&text).expect("parse"), sample());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for (bad, why) in [
            ("12 job d=1 p=0 c=x k=synthetic s=1ps dl=-", "time"),
            ("12ps d=1 p=0 c=x k=synthetic s=1ps dl=-", "job token"),
            ("class x\n12ps job d=1 p=0 c=y k=synthetic s=1ps dl=-", "class"),
            ("class x\n12ps job d=1 p=0 c=x k=weird s=1ps dl=-", "kind"),
            ("class x\n12ps job d=1 p=0 c=x k=synthetic s=1 dl=-", "svc"),
            (
                "class x\n9ps job d=1 p=0 c=x k=synthetic s=1ps dl=-\n3ps job d=1 p=0 c=x k=synthetic s=1ps dl=-",
                "order",
            ),
        ] {
            assert!(Trace::parse(bad).is_err(), "should reject ({why}): {bad}");
        }
    }

    #[test]
    fn work_kind_tokens_round_trip() {
        for k in [
            WorkKind::Synthetic,
            WorkKind::Saxpy {
                phases: 4,
                sweeps: 7,
            },
            WorkKind::AllReduce { phases: 1 },
        ] {
            assert_eq!(WorkKind::parse(&k.to_string()), Some(k));
        }
        assert_eq!(WorkKind::parse("saxpy/1"), None);
        assert_eq!(WorkKind::parse("allreduce/1/2"), None);
    }

    #[test]
    fn push_enforces_time_order_and_known_class() {
        let mut t = Trace::new();
        let c = t.class("only");
        let mk = |at| Arrival {
            at,
            dim: 0,
            priority: 0,
            class: c,
            work: WorkKind::Synthetic,
            service: Dur::us(1),
            deadline: None,
        };
        t.push(mk(Dur::us(5)));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = t.clone();
            t2.push(mk(Dur::us(1)));
        }));
        assert!(r.is_err(), "out-of-order push must panic");
        assert_eq!(t.span(), Dur::us(5));
        assert_eq!(t.max_dim(), 0);
    }
}
