//! # fps-t-series — facade crate
//!
//! A comprehensive Rust reproduction of *"The Architecture of a Homogeneous
//! Vector Supercomputer"* (Gustafson, Hawkinson & Scott, Floating Point
//! Systems, ICPP 1986): a deterministic, cycle-approximate simulator of the
//! **FPS T Series** hypercube vector supercomputer together with the software
//! stack the paper argues the architecture supports.
//!
//! This crate re-exports the workspace members under short module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `ts-sim` | deterministic async discrete-event kernel |
//! | [`fpu`] | `ts-fpu` | bit-accurate software IEEE-754 (flush-to-zero) + pipeline models |
//! | [`mem`] | `ts-mem` | dual-ported banked node memory |
//! | [`vector`] | `ts-vec` | vector registers, arithmetic controller, vector forms |
//! | [`link`] | `ts-link` | serial links: framing, DMA, sublinks, contention |
//! | [`cube`] | `ts-cube` | binary n-cube topology, Gray codes, embeddings, routing |
//! | [`cp`] | `ts-cp` | stack-machine control-processor ISA, assembler, emulator |
//! | [`node`] | `ts-node` | node assembly + Occam-style programming model |
//! | [`machine`] | `t-series-core` | modules, system ring, disks, snapshots, collectives |
//! | [`kernels`] | `ts-kernels` | distributed matmul, FFT, LU, bitonic sort, stencil |
//! | [`sched`] | `ts-sched` | space-sharing job scheduler: buddy subcubes, preemption, accounting |
//! | [`workload`] | `ts-workload` | open-arrival trace generator: Poisson/heavy-tailed streams, size and deadline classes |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure and quantitative claim.
//!
//! ## Quickstart
//!
//! ```
//! use fps_t_series::machine::{Machine, MachineCfg};
//!
//! // Build a 2-cube (4 nodes) and run a program on every node.
//! let mut m = Machine::build(MachineCfg::cube_small_mem(2, 8));
//! let handles = m.launch(|ctx| async move {
//!     ctx.cp_compute(100).await; // 100 instructions at 7.5 MIPS
//!     ctx.id()
//! });
//! assert!(m.run().quiescent);
//! assert_eq!(handles[3].try_take(), Some(3));
//! // See examples/quickstart.rs for vector arithmetic and links.
//! ```

pub use t_series_core as machine;
pub use ts_cp as cp;
pub use ts_cube as cube;
pub use ts_fpu as fpu;
pub use ts_kernels as kernels;
pub use ts_link as link;
pub use ts_mem as mem;
pub use ts_node as node;
pub use ts_sched as sched;
pub use ts_sim as sim;
pub use ts_vec as vector;
pub use ts_workload as workload;
