//! Open-arrival service acceptance: replayable trace text, deterministic
//! admission and capacity reporting, and the fidelity path that replays
//! a kernel-mix stream on a live simulated machine.

use fps_t_series::machine::{Machine, MachineCfg};
use fps_t_series::sched::{ServiceCfg, ServiceScheduler};
use fps_t_series::workload::{Dist, Trace, TraceGen};
use ts_sim::Dur;

fn small(dim: u32) -> MachineCfg {
    MachineCfg::cube_small_mem(dim, 8)
}

/// A mixed two-class generator at a target offered load, using the
/// generator's own load estimate to set the arrival rate. Mostly
/// narrow jobs plus a wide tail (capped at `dim - 2`) so the fleet
/// actually queues.
fn gen_at(seed: u64, dim: u32, load: f64, kernels: f64) -> TraceGen {
    let top = dim.saturating_sub(2).max(1);
    let full = [(0u32, 0.2), (1, 0.45), (2, 0.25), (3, 0.07), (4, 0.03)];
    let sizes: Vec<(u32, f64)> = full.iter().copied().filter(|&(d, _)| d <= top).collect();
    let g = TraceGen::new(seed)
        .sizes(&sizes)
        .service(Dist::Exp { mean: 1e-4 })
        .classes("batch", 0.7, 0, None)
        .class("urgent", 0.3, 3, Some(30.0))
        .kernel_fraction(kernels);
    let unit = g
        .clone()
        .interarrival(Dist::Fixed(1.0))
        .offered_load(dim)
        .expect("sized generator reports offered load");
    g.interarrival(Dist::Exp { mean: unit / load })
}

/// Trace text round-trips: `Display` then `parse` reproduces the
/// arrivals, classes, and work kinds exactly.
#[test]
fn trace_text_round_trips() {
    let trace = gen_at(7, 5, 0.8, 0.25).generate(500);
    let text = trace.to_string();
    let back = Trace::parse(&text).expect("rendered trace parses");
    assert_eq!(
        back.to_string(),
        text,
        "Display/parse must be a fixed point"
    );
    assert_eq!(back.len(), trace.len());
    assert_eq!(back.max_dim(), trace.max_dim());
    assert_eq!(back.span(), trace.span());
}

/// The capacity path admits every arrival, reports byte-identical
/// results across runs, and exercises both aging and EDF on a loaded
/// stream.
#[test]
fn capacity_path_is_deterministic_and_complete() {
    let trace = gen_at(42, 6, 0.85, 0.0).generate(20_000);
    let svc = ServiceScheduler::new(ServiceCfg::new(6).aging(Dur::us(500), 4));
    let a = svc.run(&trace);
    let b = svc.run(&trace);
    assert_eq!(a.render(), b.render(), "capacity report must be replayable");
    assert_eq!(a.jobs, 20_000, "admission never drops an arrival");
    assert!(a.aging_promotions > 0, "aging must fire under load");
    assert!(a.edf_reorders > 0, "deadlines must reorder at least once");
    assert!(a.p99_wait >= a.p50_wait && a.p50_wait >= Dur::ps(0));
    assert!(a.mean_slowdown >= 1.0, "slowdown is wait-inclusive");
}

/// Heavier offered load must not improve the p99 wait: the envelope
/// bends the right way.
#[test]
fn p99_wait_grows_with_offered_load() {
    let light = gen_at(11, 6, 0.5, 0.0).generate(10_000);
    let heavy = gen_at(11, 6, 0.95, 0.0).generate(10_000);
    let svc = ServiceScheduler::new(ServiceCfg::new(6).aging(Dur::us(500), 4));
    let lo = svc.run(&light);
    let hi = svc.run(&heavy);
    assert!(
        hi.p99_wait >= lo.p99_wait,
        "p99 wait shrank under heavier load: {:?} -> {:?}",
        lo.p99_wait,
        hi.p99_wait
    );
}

/// The fidelity path replays a kernel-mix stream on a live machine:
/// every job completes and both reports agree on the job count.
#[test]
fn machine_path_serves_a_kernel_mix_stream() {
    let trace = gen_at(3, 3, 0.6, 0.4).generate(60);
    let svc = ServiceScheduler::new(ServiceCfg::new(3).aging(Dur::us(500), 4));
    let mut m = Machine::build(small(3));
    let (batch, service) = svc.run_on_machine(&mut m, &trace);
    assert_eq!(batch.jobs.len(), 60);
    assert_eq!(service.jobs, 60);
    assert!(service.utilization > 0.0);
    assert!(service.makespan >= trace.span());
    // Both classes must appear in the per-class breakdown.
    let names: Vec<&str> = service.classes.iter().map(|c| c.0.as_str()).collect();
    assert!(names.contains(&"batch") && names.contains(&"urgent"));
}
