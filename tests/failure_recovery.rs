//! End-to-end failure/recovery scenarios: the §III checkpoint machinery
//! protecting a real computation across a simulated node failure.

use fps_t_series::machine::checkpoint::{CheckpointStore, SnapshotMode};
use fps_t_series::machine::fault::{FaultEvent, FaultPlan};
use fps_t_series::machine::router::Router;
use fps_t_series::machine::supervisor::{Phase, Supervisor};
use fps_t_series::machine::{Machine, MachineCfg};
use fps_t_series::vector::VecForm;
use ts_fpu::Sf64;
use ts_mem::ROW_WORDS;
use ts_sim::Dur;

/// One "phase" of work: every node runs `sweeps` SAXPY passes over its
/// accumulator row (deterministic, state lives entirely in node memory).
fn run_phase(machine: &mut Machine, sweeps: usize) {
    machine.launch(move |ctx| async move {
        let rows_a = ctx.mem().cfg().rows_a();
        for _ in 0..sweeps {
            // acc (bank B row 0) += 1.0 * ones (bank A row 0)
            ctx.vec(VecForm::Saxpy(Sf64::from(1.0)), 0, rows_a, rows_a, 128)
                .await
                .unwrap();
        }
    });
    let r = machine.run();
    assert!(r.quiescent);
}

fn setup(machine: &mut Machine) {
    for node in &machine.nodes {
        let mut mem = node.mem_mut();
        let rows_a = mem.cfg().rows_a();
        for i in 0..128 {
            mem.write_f64(2 * i, Sf64::from(1.0)).unwrap(); // the ones vector
            mem.write_f64(rows_a * ROW_WORDS + 2 * i, Sf64::from(node.id as f64))
                .unwrap();
        }
    }
}

fn read_acc(machine: &Machine, node: usize, i: usize) -> f64 {
    let mem = machine.nodes[node].mem();
    let rows_a = mem.cfg().rows_a();
    mem.read_f64(rows_a * ROW_WORDS + 2 * i).unwrap().to_host()
}

#[test]
fn crash_restore_rerun_equals_uninterrupted_run() {
    // Reference: run 3 + 5 phases straight through.
    let mut reference = Machine::build(MachineCfg::cube_small_mem(3, 8));
    setup(&mut reference);
    run_phase(&mut reference, 3);
    run_phase(&mut reference, 5);
    let want: Vec<f64> = (0..8).map(|n| read_acc(&reference, n, 17)).collect();

    // Protected run: 3 phases, checkpoint, then a crash destroys phase-2
    // progress on one node. The machine "reboots" (fresh build — task
    // state does not survive a crash), restores the snapshot, reruns.
    let mut m = Machine::build(MachineCfg::cube_small_mem(3, 8));
    setup(&mut m);
    run_phase(&mut m, 3);
    let (images, snap_t) = m.snapshot().unwrap();
    assert!(snap_t > Dur::ZERO);
    // Phase 2 starts, then node 5 takes a memory fault partway through.
    run_phase(&mut m, 2); // partial work that will be lost
    m.nodes[5].mem_mut().inject_bit_flip(500, 9).unwrap();
    assert!(
        m.nodes[5].mem().read_word(500).is_err(),
        "parity must detect the fault"
    );

    // Reboot + restore + rerun phase 2 in full.
    let mut rebooted = Machine::build(MachineCfg::cube_small_mem(3, 8));
    let restore_t = rebooted.restore(&images).unwrap();
    assert!(restore_t > Dur::ZERO);
    run_phase(&mut rebooted, 5);

    let got: Vec<f64> = (0..8).map(|n| read_acc(&rebooted, n, 17)).collect();
    assert_eq!(got, want, "recovered run must equal the uninterrupted run");
    // And the values are what the arithmetic says: id + 8 sweeps.
    for (n, v) in got.iter().enumerate() {
        assert_eq!(*v, n as f64 + 8.0);
    }
}

#[test]
fn torn_checkpoint_is_discarded_and_recovery_uses_the_last_good_image() {
    // Two-version commit, end to end: a good checkpoint, then a crash
    // mid-stream of the next one. The staged (torn) version must be
    // discarded and recovery must replay from the last committed image —
    // never a blend of old and new rows.
    let mut m = Machine::build(MachineCfg::cube_small_mem(3, 8));
    setup(&mut m);
    run_phase(&mut m, 3);
    let mut store = CheckpointStore::new(m.nodes.len());
    m.checkpoint(&mut store, SnapshotMode::Full).unwrap();
    let want: Vec<f64> = (0..8).map(|n| read_acc(&m, n, 17)).collect();

    run_phase(&mut m, 2); // progress the torn checkpoint would have saved
    let node = m.nodes[5].clone();
    let h = m.handle();
    m.handle().spawn(async move {
        h.sleep(Dur::ms(5)).await; // mid-stream of the 131 ms module stage
        node.crash();
    });
    assert!(
        m.checkpoint(&mut store, SnapshotMode::Full).is_err(),
        "a crash mid-stream must tear the checkpoint"
    );
    assert_eq!(store.epoch(), 1, "the staged version was discarded");
    assert_eq!(store.torn_aborts(), 1);

    // Reboot: a fresh machine restores the last committed image and
    // replays the lost phase in full.
    let mut rebooted = Machine::build(MachineCfg::cube_small_mem(3, 8));
    rebooted.restore_from(&store).unwrap();
    let got: Vec<f64> = (0..8).map(|n| read_acc(&rebooted, n, 17)).collect();
    assert_eq!(got, want, "recovery must see the last good image");
    run_phase(&mut rebooted, 5);
    for (n, v) in (0..8).map(|n| read_acc(&rebooted, n, 17)).enumerate() {
        assert_eq!(v, n as f64 + 8.0);
    }
}

#[test]
fn snapshot_overhead_accounts_in_simulated_time() {
    // The snapshot is not free: wall-clock of (work, snapshot, work) equals
    // the sum of its parts.
    let mut m = Machine::build(MachineCfg::cube_small_mem(3, 8));
    setup(&mut m);
    run_phase(&mut m, 3);
    let t1 = m.now();
    let (_, snap_t) = m.snapshot().unwrap();
    let t2 = m.now();
    assert_eq!(t2.since(t1), snap_t);
    run_phase(&mut m, 3);
    assert!(m.now() > t2);
}

#[test]
fn router_poison_shutdown_completes_after_scheduled_link_down() {
    // A cable dies while the fabric is idle; the shutdown wave must still
    // reach every daemon — poisons detour around the dead edge (or are
    // dropped and recovered by the backstop) instead of parking forever.
    let mut m = Machine::build(MachineCfg::cube_small_mem(3, 8));
    let router = Router::start(&m);
    FaultPlan::new()
        .with(Dur::us(50), FaultEvent::LinkDown { node: 0, dim: 1 })
        .schedule(&m);
    let h = m.handle();
    let jh = m.handle().spawn(async move {
        h.sleep(Dur::us(100)).await; // let the fault land first
        router.shutdown().await
    });
    let r = m.run();
    assert!(r.quiescent, "shutdown must not hang on a degraded fabric");
    assert!(jh.try_take().is_some(), "every daemon stopped and reported");
    assert_eq!(m.metrics().get("fault.link_down"), 1);
}

#[test]
fn supervisor_recovers_mem_flip_during_phase_two_bit_identically() {
    // The same job as crash_restore_rerun_equals_uninterrupted_run, but
    // the fault drill and the recovery are fully automatic: a bit flip
    // lands mid phase 2, the supervisor's patrol scan catches it, and the
    // reboot-restore-replay leaves memory bit-identical to the fault-free
    // reference.
    let cfg = MachineCfg::cube_small_mem(3, 8);
    let phases: Vec<Phase<'static>> = vec![
        Box::new(|m: &mut Machine| run_phase_async(m, 3)),
        Box::new(|m: &mut Machine| run_phase_async(m, 5)),
    ];
    let sup = Supervisor::new(cfg);

    let (ref_m, ref_rep) = sup
        .run_to_completion(setup, &phases, &FaultPlan::new())
        .unwrap();
    let want: Vec<f64> = (0..8).map(|n| read_acc(&ref_m, n, 17)).collect();
    assert_eq!(want, (0..8).map(|n| n as f64 + 8.0).collect::<Vec<_>>());

    // Position the flip in the middle of phase 2: job time = baseline
    // snapshot + phase 1 + half of phase 2, measured on a probe machine.
    let mut probe = Machine::build(cfg);
    setup(&mut probe);
    let mut probe_store = CheckpointStore::new(probe.nodes.len());
    let d0 = probe
        .checkpoint(&mut probe_store, SnapshotMode::Full)
        .unwrap()
        .duration;
    run_phase(&mut probe, 3);
    let t = probe.now();
    run_phase(&mut probe, 5);
    let p2 = probe.now().since(t);
    let flip_at = ref_rep.total - p2 + Dur::from_secs_f64(p2.as_secs_f64() / 2.0);
    assert!(flip_at > d0, "flip must land after the baseline snapshot");

    let rows_a = ref_m.nodes[0].mem().cfg().rows_a();
    let plan = FaultPlan::new().with(
        flip_at,
        FaultEvent::MemFlip {
            node: 5,
            addr: rows_a * ROW_WORDS + 34,
            bit: 13,
        },
    );
    let (m, rep) = sup.run_to_completion(setup, &phases, &plan).unwrap();
    let got: Vec<f64> = (0..8).map(|n| read_acc(&m, n, 17)).collect();
    assert_eq!(
        got, want,
        "auto-recovered run must equal the fault-free run"
    );
    assert_eq!(rep.reboots, 1);
    assert!(
        rep.rework > Dur::ZERO,
        "phase-2 progress was lost and replayed"
    );
    assert_eq!(
        m.nodes[5].mem().parity_errors(),
        0,
        "no latent corruption survives"
    );
}

/// Like [`run_phase`] but only launches — the supervisor drives the sim.
fn run_phase_async(machine: &mut Machine, sweeps: usize) {
    machine.launch(move |ctx| async move {
        let rows_a = ctx.mem().cfg().rows_a();
        for _ in 0..sweeps {
            if ctx
                .vec(VecForm::Saxpy(Sf64::from(1.0)), 0, rows_a, rows_a, 128)
                .await
                .is_err()
            {
                return;
            }
        }
    });
}

#[test]
fn utilization_report_reflects_the_run() {
    let mut m = Machine::build(MachineCfg::cube_small_mem(2, 8));
    setup(&mut m);
    run_phase(&mut m, 4);
    let report = m.utilization_report();
    assert!(report.contains("node"), "{report}");
    // 4 nodes × 4 sweeps × 256 flops.
    assert_eq!(m.metrics().get("vec.flops"), 4 * 4 * 256);
    assert!(report.contains("MFLOPS achieved"));
    // Vector utilization is >0% and ≤100% on every line.
    for line in report.lines().skip(1).take(4) {
        let pct: f64 = line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct > 0.0 && pct <= 100.0, "{line}");
    }
}
