//! Telemetry-spine integration tests: the Perfetto export must be
//! schema-valid `trace_event` JSON, histogram bucketing must respect its
//! own bucket-range invariants, and a deterministic simulator must emit
//! byte-identical event streams for identical runs.

use fps_t_series::fpu::Sf64;
use fps_t_series::machine::{Machine, MachineCfg};
use fps_t_series::sim::{trace_event_json, Histogram, Tracer};
use fps_t_series::vector::VecForm;

/// A tiny recursive-descent JSON parser — just enough to validate the
/// hand-rolled exporter's output structurally instead of by substring
/// matching. Numbers, strings with the escapes the exporter emits,
/// arrays, objects.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, PartialEq)]
    pub enum Value {
        /// `null` / `true` / `false` (the exporter never emits these, but
        /// accepting them keeps the parser honest).
        Null,
        /// Boolean.
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object, insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => keyword(b, pos, "true", Value::Bool(true)),
            Some(b'f') => keyword(b, pos, "false", Value::Bool(false)),
            Some(b'n') => keyword(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn keyword(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("dangling escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            *pos += 4;
                        }
                        _ => return Err(format!("unknown escape \\{}", esc as char)),
                    }
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Two nodes, three rounds: node 0 overlaps a vector form with a gather
/// and a send; node 1 receives and computes. Exercises span, flow and
/// metadata emission on CP, vector, port and wire tracks.
fn traced_workload() -> Tracer {
    let mut m = Machine::build(MachineCfg::cube(1));
    let tracer = m.enable_tracing();
    let rows_a = m.ctx(0).mem().cfg().rows_a();
    let tx = m.ctx(0);
    m.launch_on(0, async move {
        for round in 0..3u32 {
            let pending = tx
                .vec_async(VecForm::Saxpy(Sf64::from(2.0)), 0, rows_a, rows_a, 128)
                .unwrap();
            let srcs: Vec<usize> = (0..32).map(|i| 8192 + 4 * i).collect();
            tx.gather64(&srcs, 1024).await.unwrap();
            tx.send_dim(0, vec![round; 64]).await;
            pending.await;
        }
    });
    let rx = m.ctx(1);
    m.launch_on(1, async move {
        for _ in 0..3 {
            let words = rx.recv_dim(0).await;
            rx.vec_async(
                VecForm::Saxpy(Sf64::from(0.5)),
                0,
                rows_a,
                rows_a,
                words.len(),
            )
            .unwrap()
            .await;
        }
    });
    assert!(m.run().quiescent);
    tracer
}

#[test]
fn perfetto_export_is_schema_valid_trace_event_json() {
    let tracer = traced_workload();
    let text = trace_event_json(&tracer);
    let doc = json::parse(&text).expect("exporter must emit parseable JSON");

    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("top-level traceEvents array");
    assert!(!events.is_empty(), "trace must not be empty");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns")
    );

    let mut spans = 0;
    let mut flows_s = 0;
    let mut flows_f = 0;
    let mut span_pids = std::collections::BTreeSet::new();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has ph");
        assert!(
            e.get("name").and_then(|v| v.as_str()).is_some(),
            "every event has a name"
        );
        assert!(
            e.get("pid").and_then(|v| v.as_f64()).is_some(),
            "every event has pid"
        );
        assert!(
            e.get("tid").and_then(|v| v.as_f64()).is_some(),
            "every event has tid"
        );
        match ph {
            "M" => {
                let name = e.get("name").unwrap().as_str().unwrap();
                assert!(
                    name == "process_name" || name == "thread_name",
                    "metadata event {name:?}"
                );
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
            }
            "X" => {
                spans += 1;
                span_pids.insert(e.get("pid").unwrap().as_f64().unwrap() as u64);
                let ts = e.get("ts").and_then(|v| v.as_f64()).expect("X has ts");
                let dur = e.get("dur").and_then(|v| v.as_f64()).expect("X has dur");
                assert!(ts >= 0.0 && dur >= 0.0, "non-negative ts/dur");
            }
            "i" => {
                assert!(e.get("ts").and_then(|v| v.as_f64()).is_some(), "i has ts");
            }
            "C" => {
                assert!(e.get("args").is_some(), "C carries its sample in args");
            }
            "s" => {
                flows_s += 1;
                assert!(e.get("id").is_some(), "flow start has id");
            }
            "f" => {
                flows_f += 1;
                assert!(e.get("id").is_some(), "flow finish has id");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(spans > 0, "workload must produce busy spans");
    assert_eq!(flows_s, flows_f, "every flow start pairs with a finish");
    assert!(flows_s > 0, "link sends must emit flow arrows");
    // Both nodes' units must appear as their own processes (pid = id + 2).
    assert!(
        span_pids.contains(&2) && span_pids.contains(&3),
        "pids: {span_pids:?}"
    );
}

#[test]
fn histogram_bucketing_respects_bucket_ranges() {
    // Deterministic xorshift sweep across all magnitudes.
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut rand = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let h = Histogram::new();
    let mut n = 0u64;
    for _ in 0..4096 {
        // Mask to a random width so small values are as common as huge ones.
        let width = (rand() % 64) as u32;
        let v = rand() & (u64::MAX >> width);
        let b = Histogram::bucket_of(v);
        let (lo, hi) = Histogram::bucket_range(b);
        assert!(lo <= v, "value {v} below its bucket's lower bound {lo}");
        assert!(v <= hi, "value {v} above its bucket's upper bound {hi}");
        if b > 0 {
            // Buckets are half-open powers of two: [2^(b-1), 2^b).
            assert!(v >= 1 << (b - 1).min(63), "{v} too small for bucket {b}");
        } else {
            assert_eq!(v, 0, "bucket 0 holds exactly the value 0");
        }
        h.observe(v);
        n += 1;
    }
    assert_eq!(h.total(), n);
    assert_eq!(h.counts().iter().sum::<u64>(), n);
    // Quantile bounds are monotone in q and end at the max observed bucket.
    let q50 = h.quantile_bound(0.50);
    let q99 = h.quantile_bound(0.99);
    let q100 = h.quantile_bound(1.0);
    assert!(q50 <= q99 && q99 <= q100, "{q50} <= {q99} <= {q100}");
}

#[test]
fn identical_runs_emit_identical_event_streams() {
    let a = traced_workload();
    let b = traced_workload();
    assert_eq!(
        a.tracks(),
        b.tracks(),
        "track interning must be deterministic"
    );
    assert_eq!(
        trace_event_json(&a),
        trace_event_json(&b),
        "two identical runs must serialize to byte-identical traces"
    );
}
