//! Cross-crate integration tests: whole-machine scenarios that span the
//! simulator kernel, node hardware, network, system layer and kernels.

use fps_t_series::kernels::{
    fft::{distributed_fft, reference_dft},
    lu::{distributed_lu, reconstruction_error},
    matmul::{distributed_matmul, reference_matmul},
    sort::distributed_sort,
    stencil::{distributed_jacobi, reference_jacobi},
};
use fps_t_series::machine::{collectives, Machine, MachineCfg};
use fps_t_series::node::CombineOp;
use ts_fpu::Sf64;
use ts_sim::Dur;

fn small(dim: u32) -> Machine {
    Machine::build(MachineCfg::cube_small_mem(dim, 8))
}

#[test]
fn all_kernels_verify_on_a_16_node_cabinet() {
    // One cabinet (4-cube), every kernel, numerics checked end to end.
    {
        let mut m = Machine::build(MachineCfg::cube(4));
        let (a, b, c, _) = distributed_matmul(&mut m, 16, 1);
        let want = reference_matmul(16, &a, &b);
        for (got, w) in c.iter().zip(&want) {
            assert!((got - w).abs() <= 1e-12 * w.abs().max(1.0));
        }
    }
    {
        let mut m = small(4);
        let input: Vec<(f64, f64)> = (0..64).map(|i| ((i as f64).sin(), 0.0)).collect();
        let (got, _) = distributed_fft(&mut m, &input);
        let want = reference_dft(&input);
        for (&(gr, gi), &(wr, wi)) in got.iter().zip(&want) {
            assert!((gr - wr).abs() < 1e-9 && (gi - wi).abs() < 1e-9);
        }
    }
    {
        let mut m = Machine::build(MachineCfg::cube(4));
        let (a, perm, lu, _) = distributed_lu(&mut m, 32, 2);
        assert!(reconstruction_error(32, &a, &perm, &lu) < 1e-10);
    }
    {
        let mut m = small(4);
        let (sorted, _) = distributed_sort(&mut m, 256, 3);
        for w in sorted.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
    {
        let mut m = small(4);
        let init: Vec<f64> = (0..(4 * 4) * (4 * 4)).map(|i| (i % 7) as f64).collect();
        let (got, _) = distributed_jacobi(&mut m, 4, 4, &init);
        let want = reference_jacobi(16, 16, 4, &init);
        for (&a, &b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    // Same program, two fresh machines: identical final clock, metrics and
    // numeric results — the repository's foundational invariant.
    let run = || {
        let mut m = small(3);
        let cube = m.cube;
        let handles = m.launch(move |ctx| async move {
            let mine = vec![Sf64::from(ctx.id() as f64 + 0.25)];
            let sum = collectives::allreduce(&ctx, cube, CombineOp::Add, mine).await;
            collectives::barrier(&ctx, cube).await;
            sum[0].to_bits()
        });
        let report = m.run();
        assert!(report.quiescent);
        let results: Vec<u64> = handles.into_iter().map(|h| h.try_take().unwrap()).collect();
        (
            m.now(),
            report.events,
            results,
            m.metrics().get("link.bytes_sent"),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn balance_ratio_1_13_130_holds_in_the_simulator() {
    // §II: arithmetic : gather : link ≈ 0.125 µs : 1.6 µs : 16 µs.
    // Measure all three from one machine.
    let mut m = Machine::build(MachineCfg::cube(1));
    let ctx0 = m.ctx(0);
    let jh = m.launch_on(0, async move {
        // 1000 64-bit arithmetic results through the vector pipe.
        let t0 = ctx0.now();
        let r = ctx0
            .vec(ts_vec::VecForm::VAdd, 0, 256, 512, 1000)
            .await
            .unwrap();
        let arith_per_op = r.timing.duration.as_secs_f64() / 1000.0;
        let _ = t0;
        // 1000 gathered 64-bit elements.
        let t1 = ctx0.now();
        let srcs: Vec<usize> = (0..1000).map(|i| 4096 + 4 * i).collect();
        ctx0.gather64(&srcs, 2048).await.unwrap();
        let gather_per = ctx0.now().since(t1).as_secs_f64() / 1000.0;
        // 1000 64-bit words over one link.
        let t2 = ctx0.now();
        ctx0.send_f64s(0, &vec![Sf64::ZERO; 1000]).await;
        let link_per = ctx0.now().since(t2).as_secs_f64() / 1000.0;
        (arith_per_op, gather_per, link_per)
    });
    let ctx1 = m.ctx(1);
    m.launch_on(1, async move {
        ctx1.recv_f64s(0).await;
    });
    assert!(m.run().quiescent);
    let (arith, gather, link) = jh.try_take().unwrap();
    let r_gather = gather / arith;
    let r_link = link / arith;
    assert!(
        (11.0..15.0).contains(&r_gather),
        "gather/arith = {r_gather}"
    );
    assert!((115.0..145.0).contains(&r_link), "link/arith = {r_link}");
}

#[test]
fn overlap_rule_thirteen_ops_hides_gather() {
    // §II: "a vector should enter into about 13 operations while gathering
    // the next vector" — with ≥13 vector ops per gathered vector the CP
    // gather disappears behind the arithmetic.
    let ops_time = |k: usize| {
        let mut m = Machine::build(MachineCfg::cube(0));
        let ctx = m.ctx(0);
        let jh = m.launch_on(0, async move {
            const N: usize = 128;
            let rows_a = ctx.mem().cfg().rows_a();
            for round in 0..8 {
                // Issue k vector ops on the current vector...
                let mut pending = Vec::new();
                for i in 0..k {
                    pending.push(
                        ctx.vec_async(
                            ts_vec::VecForm::Saxpy(Sf64::from(1.0)),
                            (round + i) % 4,
                            rows_a,
                            rows_a,
                            N,
                        )
                        .unwrap(),
                    );
                }
                // ...while gathering the next one.
                let srcs: Vec<usize> = (0..N).map(|i| 8192 + 4 * i).collect();
                ctx.gather64(&srcs, 1024).await.unwrap();
                for p in pending {
                    p.await;
                }
            }
            ctx.now()
        });
        m.run();
        jh.try_take().unwrap().as_secs_f64() / 8.0
    };
    let t1 = ops_time(1); // gather dominates
    let t13 = ops_time(13); // balanced
    let t26 = ops_time(26); // arithmetic dominates
                            // At k=1 the round costs ≈ the gather (205 µs); at k=13 the arithmetic
                            // (13 × ~18 µs ≈ 232 µs) just covers it; doubling k doubles time.
    assert!(t1 < t13 * 1.02, "t1 {t1} vs t13 {t13}");
    let ratio = t26 / t13;
    assert!(
        (1.7..2.2).contains(&ratio),
        "arithmetic-bound regime should scale with k: {ratio}"
    );
    // Efficiency: at k=13, vector-busy time ≈ wall-clock (gather hidden).
    assert!(t13 < 2.0 * t1, "13 ops should roughly match one gather");
}

#[test]
fn snapshot_is_about_15_seconds_with_full_memory() {
    // §III: "It takes about 15 seconds to take a snapshot, regardless of
    // configuration." Full 1 MB nodes, one module: 8 MB over the 0.5 MB/s
    // system thread ≈ 16 s of simulated time.
    let mut m = Machine::build(MachineCfg::cube(3));
    let (_, t) = m.snapshot().unwrap();
    let secs = t.as_secs_f64();
    assert!((14.0..19.0).contains(&secs), "snapshot took {secs} s");
}

#[test]
fn cube_scales_where_shared_bus_saturates() {
    use fps_t_series::machine::baseline::SharedBusMachine;
    // Run a genuinely parallel workload (per-node SAXPY, no communication)
    // on 1..16 nodes; achieved MFLOPS must scale ~linearly, unlike the bus
    // model at the same processor counts.
    let mut rates = Vec::new();
    for dim in [0u32, 2, 4] {
        let mut m = Machine::build(MachineCfg::cube(dim));
        m.launch(|ctx| async move {
            let rows_a = ctx.mem().cfg().rows_a();
            for _ in 0..32 {
                ctx.vec(
                    ts_vec::VecForm::Saxpy(Sf64::from(2.0)),
                    0,
                    rows_a,
                    rows_a,
                    1024,
                )
                .await
                .unwrap();
            }
        });
        assert!(m.run().quiescent);
        rates.push(m.achieved_mflops());
    }
    assert!(rates[1] / rates[0] > 3.9, "4-node scaling {:?}", rates);
    assert!(rates[2] / rates[0] > 15.6, "16-node scaling {:?}", rates);
    // The bus baseline is flat from 1 processor on.
    let bus = |p| SharedBusMachine {
        processors: p,
        bus_bytes_per_s: 100.0e6,
        demand_bytes_per_s: 192.0e6,
        peak_mflops_per_proc: 16.0,
    };
    assert!(bus(16).achieved_mflops() / bus(1).achieved_mflops() < 1.01);
}

#[test]
fn parity_fault_then_restore_recovers_a_computation() {
    let mut m = Machine::build(MachineCfg::cube_small_mem(3, 8));
    // Phase 1: compute something into every node's memory.
    let handles = m.launch(|ctx| async move {
        let v = Sf64::from(ctx.id() as f64 * 3.5);
        ctx.mem_mut().write_f64(40, v).unwrap();
        ctx.cp_compute(100).await;
    });
    m.run();
    drop(handles);
    // Checkpoint.
    let (images, _) = m.snapshot().unwrap();
    // A fault corrupts node 6 behind parity's back.
    m.nodes[6].mem_mut().inject_bit_flip(40, 13).unwrap();
    assert!(m.nodes[6].mem().read_f64(40).is_err(), "parity must trip");
    // Restore and verify every node.
    m.restore(&images).unwrap();
    for (i, node) in m.nodes.iter().enumerate() {
        assert_eq!(node.mem().read_f64(40).unwrap().to_host(), i as f64 * 3.5);
    }
}

#[test]
fn ring_distribution_scales_with_module_count() {
    use fps_t_series::machine::system::ring_distribute;
    // Program loading over the system ring is O(#modules + size), unlike
    // the O(log p) cube broadcast — the structural cost of the independent
    // ring (§III; experiment E14).
    let time_for = |dim: u32| {
        let mut m = Machine::build(MachineCfg::cube_small_mem(dim, 8));
        let boards = m.boards.clone();
        let h = m.handle();
        let t0 = m.now();
        h.spawn(async move {
            ring_distribute(&boards, vec![0u32; 4096]).await;
        });
        assert!(m.run().quiescent);
        m.now().since(t0)
    };
    let t2 = time_for(4); // 2 modules
    let t8 = time_for(6); // 8 modules
    assert!(t8 > t2, "more ring hops must cost more: {t2} vs {t8}");
    // Store-and-forward pipeline: roughly (M-1) chunk delays + payload.
    let ratio = t8.as_secs_f64() / t2.as_secs_f64();
    assert!(ratio < 8.0, "pipelining keeps it sub-linear: {ratio}");
}

#[test]
fn gather_contends_with_link_dma_on_the_word_port() {
    // §II: "With all links operating, the control processor performance is
    // degraded only slightly." Gather while a link DMA is storing into the
    // same memory: the port serializes, but the impact is small.
    let solo = {
        let mut m = Machine::build(MachineCfg::cube(1));
        let ctx = m.ctx(0);
        let jh = m.launch_on(0, async move {
            let srcs: Vec<usize> = (0..512).map(|i| 4096 + 4 * i).collect();
            let t0 = ctx.now();
            ctx.gather64(&srcs, 1024).await.unwrap();
            ctx.now().since(t0)
        });
        m.run();
        jh.try_take().unwrap()
    };
    assert_eq!(solo, Dur::ns(512 * 1600));
}

#[test]
fn one_gflops_configuration_runs_at_scale() {
    // The paper's "four-cabinet" machine: 64 full-memory nodes, 1 GFLOPS
    // peak. Run a long SAXPY on every node and verify the aggregate rate
    // approaches the advertised gigaflop.
    let mut m = Machine::build(MachineCfg::cube(6));
    assert_eq!(m.cfg().specs().peak_mflops, 1024.0);
    m.launch(|ctx| async move {
        let rows_a = ctx.mem().cfg().rows_a();
        for _ in 0..4 {
            ctx.vec(
                ts_vec::VecForm::Saxpy(Sf64::from(1.5)),
                0,
                rows_a,
                rows_a,
                8192,
            )
            .await
            .unwrap();
        }
    });
    assert!(m.run().quiescent);
    let gf = m.achieved_mflops() / 1000.0;
    assert!(gf > 0.98 && gf <= 1.024, "achieved {gf} GFLOPS");
}

#[test]
fn large_cube_collectives_smoke() {
    // 128 nodes (7-cube) with reduced memory: all-reduce + barrier complete
    // deterministically.
    let run = || {
        let mut m = Machine::build(MachineCfg::cube_small_mem(7, 8));
        let cube = m.cube;
        let handles = m.launch(move |ctx| async move {
            let v = collectives::allreduce(&ctx, cube, CombineOp::Add, vec![Sf64::from(1.0)]).await;
            collectives::barrier(&ctx, cube).await;
            v[0].to_host()
        });
        let r = m.run();
        assert!(r.quiescent);
        for h in handles {
            assert_eq!(h.try_take(), Some(128.0));
        }
        m.now()
    };
    assert_eq!(run(), run());
}
