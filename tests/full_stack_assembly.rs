//! The deepest end-to-end path in the repository: a **distributed dot
//! product written in control-processor assembly**, running on two nodes.
//!
//! Each node's machine code issues a `Dot` vector form to its arithmetic
//! controller (`vecop`), exchanges the partial result with its neighbour
//! over a serial link (`out`/`in`), and adds the halves — exercising, in
//! one program: the assembler, the stack-machine emulator, the vector
//! micro-sequencer, the bit-accurate FPU, the dual-ported memory, the
//! framed link protocol, and the machine wiring.

use fps_t_series::machine::{Machine, MachineCfg};
use ts_fpu::Sf64;
use ts_mem::ROW_WORDS;

#[test]
fn distributed_dot_product_in_machine_code() {
    let mut machine = Machine::build(MachineCfg::cube(1));
    const N: usize = 64;

    // Host-side data: node k holds x_k (bank A row 0) and y_k (bank B).
    let mut want_total = 0.0f64;
    for node in &machine.nodes {
        let mut mem = node.mem_mut();
        let rows_a = mem.cfg().rows_a();
        for i in 0..N {
            let x = (node.id as usize * N + i) as f64 * 0.25;
            let y = 2.0 - i as f64 * 0.125;
            mem.write_f64(2 * i, Sf64::from(x)).unwrap();
            mem.write_f64(rows_a * ROW_WORDS + 2 * i, Sf64::from(y))
                .unwrap();
            want_total += x * y;
        }
        // Vector-form descriptor at word 600: Dot(3), x=row 0, y=bank B.
        mem.write_word(600, 3).unwrap();
        mem.write_word(601, 0).unwrap();
        mem.write_word(602, rows_a as u32).unwrap();
        mem.write_word(603, 0).unwrap();
        // (The scalar result lands at words 604..606.)
    }

    // The per-node programs, pure assembly. Rendezvous channels demand one
    // side receive while the other sends, so the even node sends first and
    // the odd node receives first (the Occam idiom for a symmetric swap).
    //   vecop dot            -> partial at words 604/605
    //   out/in on channel 0  <-> neighbour (order by node parity)
    //   halt (the host adds the halves with the node's own FPU below)
    let send_part = "ldc 0\nldc 604\nldc 2\nout\n";
    let recv_part = "ldc 0\nldc 608\nldc 2\nin\n";
    let prologue = "ldc 600\nldc 64\nvecop\n";
    let even = format!("{prologue}{send_part}{recv_part}halt\n");
    let odd = format!("{prologue}{recv_part}{send_part}halt\n");

    let mut joins = Vec::new();
    for node in &machine.nodes {
        let ctx = node.ctx();
        let src = if node.id % 2 == 0 {
            even.clone()
        } else {
            odd.clone()
        };
        let code = ts_cp::assemble(&src).expect("assembly failed");
        joins.push(machine.handle().spawn(async move {
            ctx.run_cp_program(&code, 4096, 256)
                .await
                .unwrap()
                .instructions
        }));
    }
    let report = machine.run();
    assert!(report.quiescent, "assembly programs deadlocked");
    for j in joins {
        assert!(j.try_take().unwrap() > 10);
    }

    // Every node now holds its partial (604) and its neighbour's (608):
    // combine with the node's own (software) arithmetic and check both
    // nodes agree with the host reference.
    for node in &machine.nodes {
        let mem = node.mem();
        let mine = Sf64::from_bits(mem.read_u64(604).unwrap());
        let theirs = Sf64::from_bits(mem.read_u64(608).unwrap());
        let total = (mine + theirs).to_host();
        assert!(
            (total - want_total).abs() < 1e-9,
            "node {}: {} vs {}",
            node.id,
            total,
            want_total
        );
    }

    // The run exercised the vector units and the links for real.
    assert_eq!(machine.metrics().get("vec.flops"), 2 * 2 * N as u64);
    assert!(machine.metrics().get("link.bytes_sent") >= 16);
}

#[test]
fn compiled_occ_programs_communicate_across_a_link() {
    // The §II claim, end to end: node software written in the high-level
    // language, compiled to the stack ISA, communicating over real links.
    // Node 0 computes gcd(462, 1071) and sends it; node 1 receives it,
    // squares it, and sends it back.
    let mut machine = Machine::build(MachineCfg::cube(1));

    let producer = ts_cp::occ::compile(
        "a := 462; b := 1071;\n\
         while b != 0 { t := b; b := a % b; a := t; }\n\
         send 0, a;\n\
         recv 0, back;\n",
    )
    .expect("producer compile");
    let consumer = ts_cp::occ::compile(
        "recv 0, v;\n\
         sq := v * v;\n\
         send 0, sq;\n",
    )
    .expect("consumer compile");

    let c0 = machine.ctx(0);
    let p = producer.clone();
    machine.launch_on(0, async move {
        c0.run_cp_program(&p.code, 8192, 256).await.unwrap();
    });
    let c1 = machine.ctx(1);
    let q = consumer.clone();
    machine.launch_on(1, async move {
        c1.run_cp_program(&q.code, 8192, 256).await.unwrap();
    });
    let report = machine.run();
    assert!(report.quiescent, "occ programs deadlocked");

    // gcd(462, 1071) = 21; node 1 squares it to 441; node 0 gets it back.
    let slot_back = producer.vars["back"];
    assert_eq!(
        machine.nodes[0].mem().read_word(256 + slot_back).unwrap(),
        441
    );
    let slot_sq = consumer.vars["sq"];
    assert_eq!(
        machine.nodes[1].mem().read_word(256 + slot_sq).unwrap(),
        441
    );
    // Two messages actually crossed the serial link.
    assert_eq!(machine.metrics().get("link.msgs_sent"), 2);
}
