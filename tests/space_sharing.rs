//! Space-sharing acceptance tests: subcube isolation, preemptive
//! multi-job scheduling, fault-driven re-allocation, per-job accounting.

use fps_t_series::cube::{Hypercube, Subcube};
use fps_t_series::machine::{collectives, Machine, MachineCfg};
use fps_t_series::node::CombineOp;
use fps_t_series::sched::{run_standalone, JobKernel, JobSpec, Policy, Scheduler};
use ts_fpu::Sf64;
use ts_sim::{Dur, Tracer};

fn small(dim: u32) -> MachineCfg {
    MachineCfg::cube_small_mem(dim, 8)
}

/// Satellite: an all-reduce inside a 2-subcube of a 4-cube — on
/// *non-contiguous* dims, so the relabeling is nontrivial — produces
/// results and per-node link traffic identical to a dedicated 2-cube.
#[test]
fn allreduce_in_a_subcube_matches_a_dedicated_2cube() {
    let cube2 = Hypercube::new(2);
    let program = |ctx: fps_t_series::node::NodeCtx| async move {
        let mine = vec![Sf64::from(ctx.id() as f64 + 1.0)];
        collectives::allreduce(&ctx, cube2, CombineOp::Add, mine).await
    };

    // Reference: the same program on a dedicated 2-cube.
    let mut m2 = Machine::build(small(2));
    let ref_handles = m2.launch(program);
    assert!(m2.run().quiescent);
    let want: Vec<Vec<Sf64>> = ref_handles.iter().map(|h| h.try_take().unwrap()).collect();

    // A 2-subcube of a 4-cube: virtual dim 0 rides physical dim 1,
    // virtual dim 1 rides physical dim 3, based away from node 0.
    let mut m4 = Machine::build(small(4));
    let sub = Subcube::new(0b0101, vec![1, 3]);
    let handles = m4.launch_subcube(&sub, program);
    assert!(m4.run().quiescent);
    for (v, h) in handles.iter().enumerate() {
        assert_eq!(h.try_take().unwrap(), want[v], "virtual node {v} diverged");
    }

    // Identical communication, hop for hop: each virtual node moved
    // exactly the words its dedicated-cube twin moved.
    for v in 0..sub.len() {
        let twin = m2.nodes[v as usize].meters();
        let here = m4.nodes[sub.to_phys(v) as usize].meters();
        assert_eq!(
            here.link_words_sent.get(),
            twin.link_words_sent.get(),
            "node {v} sent"
        );
        assert_eq!(
            here.link_words_recv.get(),
            twin.link_words_recv.get(),
            "node {v} recv"
        );
    }
    // And the partition stayed isolated: nodes outside it moved nothing.
    for p in (0..16).filter(|&p| !sub.contains(p)) {
        assert_eq!(m4.nodes[p as usize].meters().link_words_sent.get(), 0);
    }
}

/// Acceptance: a high-priority arrival evicts the running job via
/// checkpoint; the evicted job resumes later and still produces
/// bit-identical results; the `job/{id}/preemptions` counter and the
/// Perfetto job spans both show the eviction.
#[test]
fn preemption_is_checkpointed_and_bit_identical() {
    let long = JobSpec::new("long", 2, JobKernel::AllReduce { phases: 6 });
    let urgent = JobSpec::new(
        "urgent",
        1,
        JobKernel::Saxpy {
            phases: 1,
            sweeps: 2,
        },
    )
    .priority(5)
    .submit_at(Dur::us(200));
    let long_alone = run_standalone(small(2), &long);
    let urgent_alone = run_standalone(small(1), &urgent);

    let tracer = Tracer::new();
    let mut m = Machine::build(small(2));
    let rep = Scheduler::new(Policy::Fcfs).run_batch(&mut m, vec![long, urgent], Some(&tracer));

    assert!(
        rep.jobs[0].preemptions >= 1,
        "the urgent job must evict the long one"
    );
    assert_eq!(
        rep.jobs[0].result, long_alone.result,
        "evicted job resumed bit-identically"
    );
    assert_eq!(rep.jobs[1].result, urgent_alone.result);
    assert!(
        rep.jobs[1].turnaround < rep.jobs[0].turnaround,
        "priority let the urgent job cut ahead of the long one"
    );

    // Accounting: the counter is on the machine's registry...
    assert_eq!(
        m.registry().get_counter("job/0/preemptions"),
        Some(rep.jobs[0].preemptions as u64)
    );
    // ...and the job's Perfetto track shows one span per held interval.
    let spans = tracer
        .spans()
        .into_iter()
        .filter(|s| s.track == "job/0")
        .count() as u32;
    assert_eq!(
        spans,
        rep.jobs[0].preemptions + 1,
        "an eviction splits the job span"
    );
}

/// Acceptance: backfill achieves strictly lower makespan than strict
/// FCFS on a mixed-width batch (a wide head job blocks a short narrow
/// one that could run beside the current job).
#[test]
fn backfill_beats_fcfs_on_a_mixed_width_batch() {
    let batch = || {
        vec![
            JobSpec::new("long-narrow", 1, JobKernel::AllReduce { phases: 6 }),
            JobSpec::new(
                "wide",
                2,
                JobKernel::Saxpy {
                    phases: 2,
                    sweeps: 4,
                },
            ),
            JobSpec::new(
                "short-narrow",
                1,
                JobKernel::Saxpy {
                    phases: 1,
                    sweeps: 1,
                },
            ),
        ]
    };
    let run = |policy| {
        let mut m = Machine::build(small(2));
        Scheduler::new(policy).run_batch(&mut m, batch(), None)
    };
    let fcfs = run(Policy::Fcfs);
    let backfill = run(Policy::FcfsBackfill);

    assert!(
        backfill.makespan < fcfs.makespan,
        "backfill {:?} must beat FCFS {:?}",
        backfill.makespan,
        fcfs.makespan
    );
    // The schedule changes; the numbers must not.
    for (b, f) in backfill.jobs.iter().zip(&fcfs.jobs) {
        assert_eq!(
            b.result, f.result,
            "job '{}' diverged across policies",
            b.name
        );
    }
}

/// Acceptance: a fault inside a partition condemns that subcube, and the
/// job is re-allocated to a fresh subcube and replayed from checkpoint.
#[test]
fn node_crash_reallocates_the_job_to_a_fresh_subcube() {
    let job = JobSpec::new("victim", 1, JobKernel::AllReduce { phases: 4 });
    let alone = run_standalone(small(1), &job);

    let mut m = Machine::build(small(3));
    // The deterministic allocator places job 0 on nodes {0, 1}; crash
    // node 1 mid-run from a host-side timer task.
    let doomed = m.nodes[1].clone();
    let h = m.handle();
    m.launch_on(0, async move {
        h.sleep(Dur::us(300)).await;
        doomed.crash();
    });
    let rep = Scheduler::new(Policy::Fcfs).run_batch(&mut m, vec![job], None);

    assert_eq!(
        rep.jobs[0].reallocations, 1,
        "the crash must force one re-allocation"
    );
    assert_eq!(
        rep.jobs[0].result, alone.result,
        "replay from checkpoint is bit-identical"
    );
    assert_eq!(m.registry().get_counter("job/0/reallocations"), Some(1));
    assert!(m.nodes[1].is_crashed(), "the condemned node stays dead");
}

/// Acceptance: a mixed 6-job batch on a 4-cube — dims 0 through 3, both
/// kernels — runs concurrently, deterministically, and every job's
/// result is bit-identical to a dedicated run at the same dim.
#[test]
fn mixed_batch_on_a_4cube_is_deterministic_and_isolated() {
    let batch = || {
        vec![
            JobSpec::new("wide-ar", 3, JobKernel::AllReduce { phases: 2 }),
            JobSpec::new(
                "pair-sax",
                1,
                JobKernel::Saxpy {
                    phases: 2,
                    sweeps: 3,
                },
            ),
            JobSpec::new("quad-ar", 2, JobKernel::AllReduce { phases: 3 }),
            JobSpec::new(
                "solo-sax",
                0,
                JobKernel::Saxpy {
                    phases: 1,
                    sweeps: 5,
                },
            ),
            JobSpec::new("pair-ar", 1, JobKernel::AllReduce { phases: 1 }),
            JobSpec::new("solo-ar", 0, JobKernel::AllReduce { phases: 2 }),
        ]
    };
    let run = || {
        let mut m = Machine::build(small(4));
        let rep = Scheduler::new(Policy::FcfsBackfill).run_batch(&mut m, batch(), None);
        let wait_us: Vec<Option<u64>> = (0..6)
            .map(|i| m.registry().get_counter(&format!("job/{i}/wait_us")))
            .collect();
        (rep, wait_us)
    };
    let (rep1, wait1) = run();
    let (rep2, wait2) = run();
    assert_eq!(
        rep1.render(),
        rep2.render(),
        "seeded batch must be byte-identical"
    );
    assert_eq!(wait1, wait2);
    for (spec, out) in batch().iter().zip(&rep1.jobs) {
        let alone = run_standalone(small(spec.dim), spec);
        assert_eq!(
            out.result, alone.result,
            "job '{}' diverged from dedicated run",
            spec.name
        );
    }
    for (i, w) in wait1.iter().enumerate() {
        assert!(w.is_some(), "job {i} must book wait_us into the registry");
    }
    assert!(rep1.utilization > 0.0 && rep1.utilization <= 1.0);
}
