//! End-to-end resilience: a deterministic fault plan kills a link and
//! crashes a node mid-run, and the self-healing supervisor still delivers
//! results bit-identical to a fault-free run — reproducibly.

use fps_t_series::machine::fault::{FaultEvent, FaultPlan};
use fps_t_series::machine::router::Router;
use fps_t_series::machine::supervisor::{Phase, Supervisor, SupervisorReport};
use fps_t_series::machine::{Machine, MachineCfg};
use fps_t_series::vector::VecForm;
use ts_fpu::Sf64;
use ts_mem::ROW_WORDS;
use ts_sim::Dur;

fn cfg() -> MachineCfg {
    MachineCfg::cube_small_mem(3, 8)
}

/// Bank-B row 0: the accumulator the compute phases sweep.
fn acc_addr(m: &Machine) -> usize {
    m.nodes[0].mem().cfg().rows_a() * ROW_WORDS
}

/// Bank-B row 1: where the exchange phase stores the received word.
fn inbox_addr(m: &Machine) -> usize {
    acc_addr(m) + ROW_WORDS
}

fn seed(m: &mut Machine) {
    for node in &m.nodes {
        let mut mem = node.mem_mut();
        let rows_a = mem.cfg().rows_a();
        for i in 0..128 {
            mem.write_f64(2 * i, Sf64::from(1.0)).unwrap();
            mem.write_f64(rows_a * ROW_WORDS + 2 * i, Sf64::from(node.id as f64))
                .unwrap();
        }
    }
}

/// `sweeps` SAXPY passes (acc += ones) on every node.
fn compute_phase(sweeps: usize) -> Phase<'static> {
    Box::new(move |m: &mut Machine| {
        m.launch(move |ctx| async move {
            let rows_a = ctx.mem().cfg().rows_a();
            for _ in 0..sweeps {
                if ctx
                    .vec(VecForm::Saxpy(Sf64::from(1.0)), 0, rows_a, rows_a, 128)
                    .await
                    .is_err()
                {
                    return;
                }
            }
        });
    })
}

/// Every node routes one word to its cube-opposite through the e-cube
/// fabric; the receiver stores it in node memory. Uses the router, so a
/// dead link mid-path forces reroutes but not data loss.
fn exchange_phase() -> Phase<'static> {
    Box::new(|m: &mut Machine| {
        let router = Router::start(m);
        let n = m.nodes.len() as u32;
        let mask = n - 1;
        let handles: Vec<_> = (0..n).map(|i| router.handle(i)).collect();
        let nodes: Vec<_> = m.nodes.to_vec();
        let inbox = inbox_addr(m);
        m.launch_on(0, async move {
            // Sends may fail if a fault lands mid-phase; the supervisor
            // detects the fault and replays this whole phase, so errors
            // are simply ignored here.
            for (i, h) in handles.iter().enumerate() {
                let _ = h.send_to(i as u32 ^ mask, vec![100 + i as u32]).await;
            }
            for (i, h) in handles.iter().enumerate() {
                let (src, words) = h.recv().await;
                let v = Sf64::from((words[0] + src) as f64);
                nodes[i].mem_mut().write_f64(inbox, v).unwrap();
            }
            router.shutdown().await;
        });
    })
}

fn phases() -> Vec<Phase<'static>> {
    vec![compute_phase(3), exchange_phase(), compute_phase(2)]
}

/// Final per-node results: (accumulator word 17, exchanged word).
fn results(m: &Machine) -> Vec<(f64, f64)> {
    let (acc, inbox) = (acc_addr(m), inbox_addr(m));
    m.nodes
        .iter()
        .map(|n| {
            let mem = n.mem();
            (
                mem.read_f64(acc + 34).unwrap().to_host(),
                mem.read_f64(inbox).unwrap().to_host(),
            )
        })
        .collect()
}

/// Job timeline without faults or supervisor: (baseline snapshot cost,
/// compute-phase duration, exchange-phase duration). Pins fault times to
/// the middle of specific phases.
fn probe_times() -> (Dur, Dur, Dur) {
    let mut m = Machine::build(cfg());
    seed(&mut m);
    let (_, d0) = m.snapshot().unwrap();
    let ph = phases();
    let t1 = m.now();
    ph[0](&mut m);
    assert!(m.run().quiescent);
    let p0 = m.now().since(t1);
    let t2 = m.now();
    ph[1](&mut m);
    assert!(m.run().quiescent, "exchange phase must quiesce fault-free");
    let p1 = m.now().since(t2);
    (d0, p0, p1)
}

/// The plan under test: one broken cable during the first compute phase,
/// one node crash in the middle of the routed exchange.
fn plan() -> FaultPlan {
    let (d0, p0, p1) = probe_times();
    FaultPlan::new()
        .with(
            d0 + Dur::from_secs_f64(p0.as_secs_f64() / 2.0),
            FaultEvent::LinkDown { node: 1, dim: 0 },
        )
        .with(
            d0 + p0 + Dur::from_secs_f64(p1.as_secs_f64() / 2.0),
            FaultEvent::NodeCrash { node: 6 },
        )
}

fn healed_run(plan: &FaultPlan) -> (Machine, SupervisorReport) {
    Supervisor::new(cfg())
        .run_to_completion(seed, &phases(), plan)
        .unwrap()
}

#[test]
fn link_kill_plus_node_crash_heals_bit_identically() {
    let (ref_m, _) = Supervisor::new(cfg())
        .run_to_completion(seed, &phases(), &FaultPlan::new())
        .unwrap();
    let want = results(&ref_m);
    // Sanity on the reference itself: acc = id + 5 sweeps, inbox carries
    // the opposite node's greeting (100 + src) + src.
    for (i, (acc, inbox)) in want.iter().enumerate() {
        assert_eq!(*acc, i as f64 + 5.0);
        let src = i as u32 ^ 7;
        assert_eq!(*inbox, (100 + src + src) as f64);
    }

    let plan = plan();
    let (m, rep) = healed_run(&plan);
    assert_eq!(results(&m), want, "healed results must be bit-identical");
    assert_eq!(rep.reboots, 1, "only the crash needs a reboot");
    assert_eq!(rep.faults.len(), 2, "{:?}", rep.faults);
    assert!(rep.rework > Dur::ZERO);
    assert!(!m.faults().is_link_up(1, 0), "the cable stays broken");
    // The replayed exchange ran on a degraded fabric: the router had to
    // detour around the dead edge, and counted it.
    assert!(
        m.metrics().get("router.reroutes") >= 1,
        "{}",
        m.utilization_report()
    );
    // The post-mortem report tells the whole story.
    let post_mortem = m.utilization_report();
    assert!(post_mortem.contains("faults: 1 link down"), "{post_mortem}");
    assert!(post_mortem.contains("reroutes"), "{post_mortem}");
    assert!(
        post_mortem.contains("recovery: 1 snapshots, 1 reboots"),
        "{post_mortem}"
    );
}

#[test]
fn the_same_plan_reproduces_the_same_healed_run() {
    let plan = plan();
    let (m1, r1) = healed_run(&plan);
    let (m2, r2) = healed_run(&plan);
    assert_eq!(r1.faults, r2.faults, "identical fault times");
    assert_eq!(r1.total, r2.total, "identical total job time");
    assert_eq!(r1.reboots, r2.reboots);
    assert_eq!(results(&m1), results(&m2));
    assert_eq!(
        m1.metrics().get("router.reroutes"),
        m2.metrics().get("router.reroutes"),
        "identical reroute counts"
    );
}

#[test]
fn generated_plans_are_reproducible_end_to_end() {
    // A fully seeded drill: whatever faults the seed draws, two runs of
    // the same seed agree exactly. (Faults drawn beyond the job's end
    // simply never fire.)
    let mem_words = Machine::build(cfg()).nodes[0].mem().cfg().words();
    let plan = FaultPlan::generate(0xF00D, 3, mem_words, 3, Dur::ms(700));
    let run = || {
        Supervisor::new(cfg())
            .max_reboots(8)
            .run_to_completion(seed, &phases(), &plan)
    };
    match (run(), run()) {
        (Ok((m1, r1)), Ok((m2, r2))) => {
            assert_eq!(r1.faults, r2.faults);
            assert_eq!(r1.total, r2.total);
            assert_eq!(results(&m1), results(&m2));
        }
        (Err(e1), Err(e2)) => assert_eq!(e1, e2, "even failures must reproduce"),
        (a, b) => panic!(
            "runs diverged: {:?} vs {:?}",
            a.as_ref().map(|(_, r)| r.reboots),
            b.as_ref().map(|(_, r)| r.reboots)
        ),
    }
}
